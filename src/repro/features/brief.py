"""BRIEF binary descriptors (rotation-aware, i.e. the "rBRIEF" of ORB).

A descriptor is 256 pairwise intensity comparisons inside a smoothed patch
around the keypoint, packed into a 32-byte ``uint8`` vector.  Rotating the
sampling pattern by the keypoint orientation gives in-plane rotation
invariance.
"""

from __future__ import annotations

import numpy as np

from ..image.frame import gaussian_blur
from .fast import Keypoint

__all__ = ["BriefDescriptorExtractor", "hamming_distance"]

_PATCH_RADIUS = 15
_NUM_BITS = 256


def _sampling_pattern(rng_seed: int = 1234) -> tuple[np.ndarray, np.ndarray]:
    """Fixed Gaussian test-pair pattern, shared by all extractors.

    Pairs are drawn once from N(0, (patch/5)^2) clipped to the patch, the
    distribution recommended in the BRIEF paper.
    """
    rng = np.random.default_rng(rng_seed)
    scale = _PATCH_RADIUS / 2.5
    points_a = np.clip(
        rng.normal(scale=scale, size=(_NUM_BITS, 2)), -_PATCH_RADIUS, _PATCH_RADIUS
    )
    points_b = np.clip(
        rng.normal(scale=scale, size=(_NUM_BITS, 2)), -_PATCH_RADIUS, _PATCH_RADIUS
    )
    return points_a, points_b


_PATTERN_A, _PATTERN_B = _sampling_pattern()

# 256-entry popcount table for fast Hamming distance on uint8 lanes.
_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


class BriefDescriptorExtractor:
    """Computes rotated-BRIEF descriptors for FAST keypoints."""

    def __init__(self, blur_sigma: float = 2.0):
        self.blur_sigma = blur_sigma

    def compute(self, gray: np.ndarray, keypoints: list[Keypoint]) -> tuple[list[Keypoint], np.ndarray]:
        """Return (kept keypoints, (N, 32) uint8 descriptor matrix).

        Keypoints too close to the border for a full patch are dropped —
        the same contract as OpenCV's ORB.
        """
        gray = np.asarray(gray, dtype=np.float32)
        smoothed = gaussian_blur(gray, sigma=self.blur_sigma)
        height, width = gray.shape

        kept: list[Keypoint] = []
        bits_rows: list[np.ndarray] = []
        margin = _PATCH_RADIUS + 2
        for keypoint in keypoints:
            r, c = keypoint.row, keypoint.col
            if not (margin <= r < height - margin and margin <= c < width - margin):
                continue
            cos_a, sin_a = np.cos(keypoint.angle), np.sin(keypoint.angle)
            rotation = np.array([[cos_a, -sin_a], [sin_a, cos_a]])
            # Pattern points are (dr, dc); rotate them by the orientation.
            rotated_a = _PATTERN_A @ rotation.T
            rotated_b = _PATTERN_B @ rotation.T
            rows_a = np.clip(np.round(r + rotated_a[:, 0]).astype(int), 0, height - 1)
            cols_a = np.clip(np.round(c + rotated_a[:, 1]).astype(int), 0, width - 1)
            rows_b = np.clip(np.round(r + rotated_b[:, 0]).astype(int), 0, height - 1)
            cols_b = np.clip(np.round(c + rotated_b[:, 1]).astype(int), 0, width - 1)
            bits = smoothed[rows_a, cols_a] < smoothed[rows_b, cols_b]
            bits_rows.append(bits)
            kept.append(keypoint)

        if not kept:
            return [], np.zeros((0, _NUM_BITS // 8), dtype=np.uint8)
        descriptors = np.packbits(np.asarray(bits_rows, dtype=bool), axis=1)
        return kept, descriptors


def hamming_distance(descriptors_a: np.ndarray, descriptors_b: np.ndarray) -> np.ndarray:
    """All-pairs Hamming distance matrix between two (N, 32) uint8 sets."""
    descriptors_a = np.atleast_2d(descriptors_a)
    descriptors_b = np.atleast_2d(descriptors_b)
    xored = descriptors_a[:, None, :] ^ descriptors_b[None, :, :]
    return _POPCOUNT[xored].sum(axis=2).astype(np.int32)
