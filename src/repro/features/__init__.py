"""Feature substrate: FAST corners, rotated-BRIEF descriptors, brute-force
Hamming matching and the paper's mask-aware feature selection."""

from .fast import Keypoint, corner_score_map, fast_corners, grid_select
from .brief import BriefDescriptorExtractor, hamming_distance
from .matcher import Match, match_descriptors
from .orb import FeatureSet, OrbFeatureExtractor, local_sharpness, select_features

__all__ = [
    "Keypoint",
    "corner_score_map",
    "fast_corners",
    "grid_select",
    "BriefDescriptorExtractor",
    "hamming_distance",
    "Match",
    "match_descriptors",
    "FeatureSet",
    "OrbFeatureExtractor",
    "local_sharpness",
    "select_features",
]
