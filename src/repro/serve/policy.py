"""Load-balancing policies for the edge fleet scheduler.

A policy answers two questions:

* **placement** — which :class:`~repro.serve.scheduler.ServerReplica`
  should a newly arrived offload request be bound to?
* **service order** — in what order does a replica drain its queue once
  the GPU frees up?

Three built-in policies cover the design space the serving literature
keeps converging on:

* ``round_robin`` — placement ignores load entirely (the classic
  strawman, and the right thing when replicas are identical and requests
  uniform);
* ``least_queue`` — place on the replica with the smallest backlog
  (queue length, then estimated backlog milliseconds);
* ``edf`` — deadline-aware: place on the replica with the earliest
  *estimated completion* for this request, and drain each queue
  earliest-deadline-first instead of FIFO, so a request that still has
  slack never blocks one about to expire.

All policies are deterministic: ties break on replica index and
admission sequence number, never on iteration order of a set or dict.
"""

from __future__ import annotations

__all__ = [
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastQueuePolicy",
    "EarliestDeadlineFirstPolicy",
    "POLICY_NAMES",
    "make_policy",
]


class SchedulingPolicy:
    """Base class: FIFO service order, abstract placement."""

    name = "abstract"

    def choose(self, item, replicas, now_ms: float):
        """Pick the replica a new request is bound to."""
        raise NotImplementedError

    def service_key(self, item):
        """Sort key for draining a replica's queue (smallest first)."""
        return (item.seq,)  # FIFO


class RoundRobinPolicy(SchedulingPolicy):
    """Cycle through replicas regardless of their load."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, item, replicas, now_ms: float):
        replica = replicas[self._next % len(replicas)]
        self._next += 1
        return replica


class LeastQueuePolicy(SchedulingPolicy):
    """Place on the replica with the smallest backlog."""

    name = "least_queue"

    def choose(self, item, replicas, now_ms: float):
        return min(
            replicas,
            key=lambda r: (len(r.queue), r.backlog_ms(now_ms), r.index),
        )


class EarliestDeadlineFirstPolicy(SchedulingPolicy):
    """Deadline-aware placement + earliest-deadline-first service order."""

    name = "edf"

    def choose(self, item, replicas, now_ms: float):
        def estimated_completion(replica):
            start = max(item.arrive_ms, replica.server.free_at_ms, now_ms)
            return start + replica.backlog_ms(now_ms) + replica.est_infer_ms

        return min(
            replicas, key=lambda r: (estimated_completion(r), r.index)
        )

    def service_key(self, item):
        # Identical deadlines tie-break on (session, frame) — stable
        # request identity — rather than admission order, so the drain
        # order is a pure function of the workload, not of submission
        # interleaving.
        return (item.deadline_ms, item.session_index, item.frame_index)


_POLICY_FACTORIES = {
    "round_robin": RoundRobinPolicy,
    "least_queue": LeastQueuePolicy,
    "edf": EarliestDeadlineFirstPolicy,
}

POLICY_NAMES = tuple(sorted(_POLICY_FACTORIES))


def make_policy(name: str) -> SchedulingPolicy:
    factory = _POLICY_FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown scheduling policy {name!r}; pick from {sorted(_POLICY_FACTORIES)}"
        )
    return factory()
