"""Cross-session batched inference for the edge fleet.

A single edge GPU amortizes fixed per-call cost (backbone setup, kernel
launch, weight residency) across the requests of *different* client
sessions — the economics YolactEdge demonstrates with TensorRT-batched
inference.  The simulator models a batch of ``n`` compatible requests as

    batch_ms = setup + k * n**alpha,        k = mean(solo_ms) - setup

with ``setup`` calibrated from the model cost table
(:meth:`repro.runtime.pipeline.EdgeServer.batch_setup_ms` = the
device-scaled fixed RPN + second-stage entry cost) and ``alpha < 1``
making the marginal request sub-linear.  A batch of one reproduces the
solo latency exactly, so ``max_size=1`` is byte-identical to the
unbatched fleet.

:class:`BatchConfig` carries the scheduler-facing knobs; the EDF-aware
coalescing logic lives in
:meth:`repro.serve.scheduler.FleetScheduler._drain_replica`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BatchConfig", "estimate_batch_ms"]


@dataclass(frozen=True)
class BatchConfig:
    """Batching window knobs (``FleetSpec.batch_window_ms`` /
    ``max_batch_size`` surface them per experiment).

    ``window_ms`` — how long a replica may hold an otherwise-servable
    request open for co-riders before dispatching.
    ``max_size`` — batch size cap; 1 disables batching entirely.
    ``alpha`` — sub-linearity exponent of the batch latency model.
    """

    window_ms: float = 4.0
    max_size: int = 4
    alpha: float = 0.8

    @property
    def enabled(self) -> bool:
        return self.max_size > 1

    def validate(self) -> "BatchConfig":
        if self.max_size < 1:
            raise ValueError("max_size must be >= 1")
        if self.window_ms < 0.0:
            raise ValueError("window_ms must be >= 0")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        return self


def estimate_batch_ms(
    solo_est_ms: float, setup_ms: float, size: int, alpha: float
) -> float:
    """Expected service time of a batch of ``size`` requests whose mean
    solo latency is estimated at ``solo_est_ms``."""
    per_item = max(solo_est_ms - setup_ms, 0.0)
    return setup_ms + per_item * float(size) ** alpha
