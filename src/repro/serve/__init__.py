"""Deadline-aware edge fleet serving: server pool, scheduling policies,
admission control and MAMT-fallback degradation.

See ``docs/serving.md`` for the policy semantics, the degrade/recover
state machine and the ``serve.*`` observability surface.
"""

from .admission import (
    ADMIT,
    REJECT_INFEASIBLE,
    REJECT_QUEUE_FULL,
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from .batching import BatchConfig, estimate_batch_ms
from .degrade import DegradeConfig, DegradeManager, SessionHealth
from .policy import (
    POLICY_NAMES,
    EarliestDeadlineFirstPolicy,
    LeastQueuePolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    make_policy,
)
from .scheduler import (
    REJECT_NO_REPLICA,
    FleetScheduler,
    ServeItem,
    ServeOutcome,
    ServerPool,
    ServerReplica,
)

__all__ = [
    "ADMIT",
    "REJECT_INFEASIBLE",
    "REJECT_QUEUE_FULL",
    "REJECT_NO_REPLICA",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "BatchConfig",
    "estimate_batch_ms",
    "DegradeConfig",
    "DegradeManager",
    "SessionHealth",
    "POLICY_NAMES",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastQueuePolicy",
    "EarliestDeadlineFirstPolicy",
    "make_policy",
    "FleetScheduler",
    "ServeItem",
    "ServeOutcome",
    "ServerPool",
    "ServerReplica",
]
