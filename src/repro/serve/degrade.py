"""MAMT-fallback degradation: the fleet's graceful-overload state machine.

When the scheduler repeatedly rejects or sheds a client's offloads, the
client is moved to **degraded** mode: it stays alive on pure on-device
MAMT mask transfer (no encode, no uplink, no integration spikes) while
the fleet drains.  Once queue depth recovers, degraded clients are
re-admitted **one per tick** (staggered, so recovery does not instantly
re-saturate the pool), each with a keyframe request so the edge gets a
full-quality frame to re-anchor the client's instance map.

States per session::

    NORMAL --(>= failure_threshold consecutive reject/shed)--> DEGRADED
    DEGRADED --(queue depth <= recover_depth for >= min_degraded_ms,
                oldest degraded first)--> NORMAL (+ keyframe request)

The manager is pure bookkeeping — it never touches clients or servers
directly; the pipeline reads its verdicts and flips the client's offload
mode through the optional ``set_offload_enabled`` / ``request_keyframe``
client capabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DegradeConfig", "SessionHealth", "DegradeManager"]

NORMAL = "normal"
DEGRADED = "degraded"


@dataclass(frozen=True)
class DegradeConfig:
    """Knobs of the degrade -> recover state machine."""

    enabled: bool = True
    # Consecutive reject/shed outcomes before a session is degraded.
    failure_threshold: int = 2
    # Fleet-wide queued-request count at or below which recovery starts.
    recover_depth: int = 1
    # A degraded session stays down at least this long (ms) — prevents
    # flapping between degraded and re-admitted every other frame.
    min_degraded_ms: float = 300.0


@dataclass
class SessionHealth:
    """Mutable per-session degradation state."""

    state: str = NORMAL
    consecutive_failures: int = 0
    degraded_at_ms: float = 0.0
    degrade_count: int = 0
    recover_count: int = 0
    keyframe_pending: bool = False


class DegradeManager:
    """Tracks per-session health and decides degrade/recover moments."""

    def __init__(
        self,
        num_sessions: int,
        config: DegradeConfig | None = None,
        thresholds: dict[int, int] | None = None,
        recover_rank: dict[int, int] | None = None,
    ):
        self.config = config or DegradeConfig()
        self.sessions: dict[int, SessionHealth] = {
            index: SessionHealth() for index in range(num_sessions)
        }
        # Optional per-session QoS overrides (repro.tenancy): a session's
        # failure threshold scales with its QoS class (premium degrades
        # last), and recovery is granted in rank order (premium first)
        # before falling back to oldest-degraded-first.
        self.thresholds = thresholds or {}
        self.recover_rank = recover_rank or {}
        self.degrade_events = 0
        self.recover_events = 0

    # ------------------------------------------------------------------
    def is_degraded(self, session_index: int) -> bool:
        return self.sessions[session_index].state == DEGRADED

    def degraded_sessions(self) -> list[int]:
        return sorted(
            index
            for index, health in self.sessions.items()
            if health.state == DEGRADED
        )

    # ------------------------------------------------------------------
    def on_failure(self, session_index: int, now_ms: float) -> bool:
        """Record a reject/shed; returns True when this one tips the
        session into degraded mode."""
        health = self.sessions[session_index]
        health.consecutive_failures += 1
        threshold = self.thresholds.get(
            session_index, self.config.failure_threshold
        )
        if (
            self.config.enabled
            and health.state == NORMAL
            and health.consecutive_failures >= threshold
        ):
            health.state = DEGRADED
            health.degraded_at_ms = now_ms
            health.degrade_count += 1
            health.keyframe_pending = False
            self.degrade_events += 1
            return True
        return False

    def on_success(self, session_index: int) -> None:
        """An admitted (or completed) offload clears the failure run."""
        self.sessions[session_index].consecutive_failures = 0

    # ------------------------------------------------------------------
    def maybe_recover(self, now_ms: float, queue_depth: int) -> int | None:
        """Re-admit at most one session per call, oldest degraded first,
        once the fleet's queue depth has recovered.  Returns the session
        index recovered this tick (with its keyframe request flagged),
        or None."""
        if queue_depth > self.config.recover_depth:
            return None
        candidates = [
            (self.recover_rank.get(index, 0), health.degraded_at_ms, index)
            for index, health in self.sessions.items()
            if health.state == DEGRADED
            and now_ms - health.degraded_at_ms >= self.config.min_degraded_ms
        ]
        if not candidates:
            return None
        _, _, index = min(candidates)
        health = self.sessions[index]
        health.state = NORMAL
        health.consecutive_failures = 0
        health.keyframe_pending = True
        health.recover_count += 1
        self.recover_events += 1
        return index

    def take_keyframe_request(self, session_index: int) -> bool:
        """Consume the one-shot keyframe flag set at recovery."""
        health = self.sessions[session_index]
        if health.keyframe_pending:
            health.keyframe_pending = False
            return True
        return False

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-clean summary for BENCH artifacts and ``serve`` runs."""
        return {
            "degrade_events": self.degrade_events,
            "recover_events": self.recover_events,
            "degraded_at_end": self.degraded_sessions(),
            "per_session": {
                str(index): {
                    "state": health.state,
                    "degrade_count": health.degrade_count,
                    "recover_count": health.recover_count,
                }
                for index, health in sorted(self.sessions.items())
            },
        }
