"""Admission control for the edge fleet scheduler.

Every offload request carries a hard deadline — the last simulated
moment its result can still influence a displayed frame, derived from
the pipeline's ``deadline_budget_ms`` (one frame interval by default)
times a usefulness horizon measured in frame budgets.  The controller
turns the unbounded FIFO of the bare shared-server deployment into a
bounded, deadline-checked queue:

* **queue bound** — a replica never holds more than ``queue_limit``
  waiting requests; an arrival that finds the queue full is *rejected*
  outright (the client is told immediately and keeps rendering through
  MAMT);
* **feasibility** — an arrival whose estimated completion (queue backlog
  plus one inference plus the result downlink) already overshoots its
  deadline is rejected as infeasible instead of wasting queue space;
* **shedding** — a queued request whose deadline can no longer be met
  by the time the GPU would actually start it is dropped at dispatch
  time, so a saturated server spends cycles only on results that can
  still be displayed.

Estimates use a per-replica exponential moving average of observed
inference times, seeded from a configurable prior; everything is
deterministic, so fleet benchmarks remain byte-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionConfig", "AdmissionDecision", "AdmissionController"]

ADMIT = "admit"
REJECT_QUEUE_FULL = "reject-queue-full"
REJECT_INFEASIBLE = "reject-infeasible"


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the admission controller."""

    # Max *waiting* requests per replica (the in-flight inference rides
    # on top of this).
    queue_limit: int = 4
    # A result is useful for this many frame budgets after the client
    # shipped the request; past that the display has moved on and MAMT
    # is extrapolating from history anyway.
    deadline_horizon: float = 12.0
    # Reject arrivals whose estimated completion misses their deadline.
    reject_infeasible: bool = True
    # Prior for the per-replica inference-time estimate (ms) and the EMA
    # smoothing factor applied as observations come in.
    est_infer_prior_ms: float = 350.0
    est_infer_alpha: float = 0.3
    # Flat allowance for the result downlink in feasibility estimates.
    est_downlink_ms: float = 8.0


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    status: str  # ADMIT | REJECT_QUEUE_FULL | REJECT_INFEASIBLE
    est_completion_ms: float

    @property
    def admitted(self) -> bool:
        return self.status == ADMIT


class AdmissionController:
    """Bounded, deadline-checked admission in front of a replica queue."""

    def __init__(self, config: AdmissionConfig | None = None):
        self.config = config or AdmissionConfig()

    def deadline_for(self, send_ms: float, budget_ms: float) -> float:
        """Absolute deadline of a request shipped at ``send_ms``."""
        return send_ms + self.config.deadline_horizon * budget_ms

    def estimate_completion(self, item, replica, now_ms: float) -> float:
        """Estimated completion were ``item`` appended to ``replica``."""
        start = max(item.arrive_ms, replica.server.free_at_ms, now_ms)
        return (
            start
            + replica.backlog_ms(now_ms)
            + replica.est_infer_ms
            + self.config.est_downlink_ms
        )

    def check(self, item, replica, now_ms: float) -> AdmissionDecision:
        """Admit, or reject with the reason, one arriving request."""
        est = self.estimate_completion(item, replica, now_ms)
        if len(replica.queue) >= self.config.queue_limit:
            return AdmissionDecision(REJECT_QUEUE_FULL, est)
        if self.config.reject_infeasible and est > item.deadline_ms:
            return AdmissionDecision(REJECT_INFEASIBLE, est)
        return AdmissionDecision(ADMIT, est)

    def should_shed(self, item, start_ms: float, est_infer_ms: float) -> bool:
        """True when a queued request picked at ``start_ms`` can no
        longer complete before its deadline — drop it unrun."""
        return (
            start_ms + est_infer_ms + self.config.est_downlink_ms
            > item.deadline_ms
        )
