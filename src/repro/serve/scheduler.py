"""`repro.serve` — deadline-aware scheduling for a fleet of edge servers.

The bare shared deployment (:class:`~repro.runtime.multi.MultiClientPipeline`
over one :class:`~repro.runtime.pipeline.EdgeServer`) is FIFO, unbounded
and deadline-blind.  This module adds the policy layer between clients
and inference:

* :class:`ServerPool` — N ``EdgeServer`` replicas behind a pluggable
  placement policy (:mod:`repro.serve.policy`), each with its own
  bounded wait queue drained in the policy's service order;
* :class:`FleetScheduler` — the fleet control loop: admission control
  (:mod:`repro.serve.admission`), deadline shedding, and MAMT-fallback
  degradation (:mod:`repro.serve.degrade`), emitting first-class
  ``serve.admit/reject/shed/degrade/recover`` trace events and
  ``serve.*`` counters/gauges through :mod:`repro.obs`.

The scheduler runs on the pipeline's simulated clock.  Queues drain at
frame ticks: a pick is committed only once the simulated pick time is in
the past, so requests dispatched later in the run can never retroactively
jump a queue — two identical runs produce byte-identical schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..image.masks import InstanceMask
from ..obs.trace import NULL_TRACER, RequestContext, Tracer
from ..runtime.interface import OffloadRequest
from ..runtime.pipeline import EdgeServer
from ..tenancy.fairness import FairQueue
from ..tenancy.metering import TenantMeter
from ..tenancy.qos import QoSClass, TenantDirectory
from .admission import (
    ADMIT,
    REJECT_QUEUE_FULL,
    AdmissionConfig,
    AdmissionController,
)
from .batching import BatchConfig, estimate_batch_ms
from .degrade import DegradeConfig, DegradeManager
from .policy import SchedulingPolicy, make_policy

__all__ = [
    "REJECT_NO_REPLICA",
    "ServeItem",
    "ServeOutcome",
    "ServerReplica",
    "ServerPool",
    "FleetScheduler",
]

# Submit status when every replica is dead (chaos kill_replica): nothing
# can be placed, so the client is bounced straight to MAMT fallback.
REJECT_NO_REPLICA = "reject-no-replica"


@dataclass
class ServeItem:
    """One offload request travelling through the scheduler."""

    seq: int
    session_index: int
    request: OffloadRequest
    truth_masks: list[InstanceMask]
    image_shape: tuple[int, int]
    send_ms: float  # client finished encoding
    arrive_ms: float  # after the uplink
    deadline_ms: float
    ctx: RequestContext | None = None
    # Tenancy attribution (multi-tenant fleets only; see repro.tenancy):
    # owning tenant, its QoS class, and the SFQ virtual start stamped at
    # submission — the strength of this item's claim on queue slots.
    tenant: str | None = None
    qos: QoSClass | None = None
    vstart: float = 0.0

    @property
    def frame_index(self) -> int:
        return self.request.frame_index


@dataclass
class ServeOutcome:
    """What the scheduler hands back to the pipeline for one item."""

    kind: str  # "complete" | "shed"
    item: ServeItem
    masks: list[InstanceMask] = field(default_factory=list)
    completion_ms: float = 0.0
    server_index: int = -1


class ServerReplica:
    """One ``EdgeServer`` plus its wait queue and latency estimate."""

    def __init__(
        self,
        index: int,
        server: EdgeServer,
        est_infer_ms: float,
        batching: BatchConfig | None = None,
    ):
        self.index = index
        self.server = server
        self.queue: list[ServeItem] = []
        self.est_infer_ms = est_infer_ms
        # Chaos kill_replica flips this; dead replicas take no placements
        # and are skipped by the drain loop until revived.
        self.alive = True
        self.batching = batching if batching is not None and batching.enabled else None
        self.completed = 0
        self.shed = 0
        self.batches = 0
        self.batched_items = 0

    def est_batch_ms(self, size: int) -> float:
        """Expected service time for a batch of ``size`` on this replica."""
        assert self.batching is not None
        return estimate_batch_ms(
            self.est_infer_ms,
            self.server.batch_setup_ms(),
            size,
            self.batching.alpha,
        )

    def per_item_est_ms(self) -> float:
        """Expected per-item service cost of the queued backlog — the
        amortized full-batch cost when batching is on, the solo estimate
        otherwise."""
        if self.batching is None:
            return self.est_infer_ms
        size = self.batching.max_size
        return self.est_batch_ms(size) / size

    def backlog_ms(self, now_ms: float) -> float:
        """Estimated work between now and this replica going idle.

        ``free_at_ms`` carries the remaining service time of whatever is
        in flight — including a running *batch*, whose completion moved
        it forward in one step — and the queued items are costed at the
        batching-aware per-item estimate, so ``least_queue`` placement
        stays accurate when batches amortize the fixed cost.
        """
        residual = max(0.0, self.server.free_at_ms - now_ms)
        return residual + self.per_item_est_ms() * len(self.queue)

    def observe_infer(self, infer_ms: float, alpha: float) -> None:
        self.est_infer_ms = (1.0 - alpha) * self.est_infer_ms + alpha * infer_ms


class ServerPool:
    """N edge-server replicas behind one placement policy."""

    def __init__(
        self,
        servers: list[EdgeServer],
        policy: SchedulingPolicy | str = "edf",
        est_infer_prior_ms: float = 350.0,
        batching: BatchConfig | None = None,
    ):
        if not servers:
            raise ValueError("ServerPool needs at least one EdgeServer")
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.replicas = [
            ServerReplica(index, server, est_infer_prior_ms, batching=batching)
            for index, server in enumerate(servers)
        ]
        for replica in self.replicas:
            replica.server.lane = f"server{replica.index}"

    def __len__(self) -> int:
        return len(self.replicas)

    def live_replicas(self) -> list[ServerReplica]:
        return [replica for replica in self.replicas if replica.alive]

    def choose(self, item: ServeItem, now_ms: float) -> ServerReplica:
        live = self.live_replicas()
        if not live:
            raise RuntimeError("no live replica to place on")
        return self.policy.choose(item, live, now_ms)

    def queue_depth(self) -> int:
        return sum(len(replica.queue) for replica in self.replicas)

    @property
    def busy_ms_total(self) -> float:
        return sum(replica.server.busy_ms_total for replica in self.replicas)

    def is_free_at(self, now_ms: float) -> bool:
        return any(
            replica.server.is_free_at(now_ms) and not replica.queue
            for replica in self.live_replicas()
        )


class FleetScheduler:
    """Admission control + deadline scheduling + MAMT-fallback degrade."""

    def __init__(
        self,
        servers: list[EdgeServer],
        policy: SchedulingPolicy | str = "edf",
        admission: AdmissionConfig | None = None,
        degrade: DegradeConfig | None = None,
        num_sessions: int = 0,
        tracer: Tracer | None = None,
        batching: BatchConfig | None = None,
        tenancy: TenantDirectory | None = None,
    ):
        self.admission = AdmissionController(admission)
        if batching is not None:
            batching.validate()
        self.batching = batching if batching is not None and batching.enabled else None
        self.pool = ServerPool(
            servers,
            policy,
            self.admission.config.est_infer_prior_ms,
            batching=self.batching,
        )
        # Tenancy (repro.tenancy): fair queueing + per-tenant metering,
        # and QoS-scaled degrade thresholds / recovery ranks below.
        self.tenancy = tenancy
        if tenancy is not None and num_sessions and tenancy.num_sessions != num_sessions:
            raise ValueError(
                f"tenant directory covers {tenancy.num_sessions} sessions "
                f"but the fleet has {num_sessions}"
            )
        self.fair = FairQueue(tenancy) if tenancy is not None else None
        self.meter = TenantMeter(tenancy) if tenancy is not None else None
        self.degrade_config = degrade or DegradeConfig()
        thresholds: dict[int, int] = {}
        recover_rank: dict[int, int] = {}
        if tenancy is not None:
            for index in range(tenancy.num_sessions):
                qos = tenancy.qos_of(index)
                thresholds[index] = max(
                    1,
                    round(self.degrade_config.failure_threshold * qos.degrade_scale),
                )
                recover_rank[index] = qos.priority
        self.degrade = DegradeManager(
            num_sessions,
            self.degrade_config,
            thresholds=thresholds,
            recover_rank=recover_rank,
        )
        self._next_seq = 0
        # Plain-int mirrors of the serve.* counters, kept so ``stats()``
        # reports real totals even when no tracer/registry is attached.
        self.counts = {
            "submitted": 0,
            "admitted": 0,
            "rejected_queue_full": 0,
            "rejected_infeasible": 0,
            "rejected_no_replica": 0,
            "shed": 0,
            "displaced": 0,
            "completed": 0,
            "batches": 0,
            "batched_items": 0,
            "batch_saved_ms": 0.0,
            "replica_kills": 0,
            "replica_revives": 0,
        }
        # Outcomes produced between ticks (e.g. queue items orphaned by a
        # chaos kill_replica), handed back at the next advance().
        self._pending_outcomes: list[ServeOutcome] = []
        self.attach_tracer(tracer if tracer is not None else NULL_TRACER)

    # ------------------------------------------------------------------
    def attach_tracer(self, tracer: Tracer) -> None:
        """(Re)bind a tracer to the scheduler and every replica."""
        self.tracer = tracer
        for replica in self.pool.replicas:
            replica.server.attach_tracer(tracer)
        metrics = tracer.metrics
        self._m_submitted = metrics.counter("serve.submitted")
        self._m_admit = metrics.counter("serve.admit")
        self._m_reject_queue = metrics.counter("serve.reject_queue_full")
        self._m_reject_deadline = metrics.counter("serve.reject_infeasible")
        self._m_reject_no_replica = metrics.counter("serve.reject_no_replica")
        self._m_replica_down = metrics.counter("serve.replica_down")
        self._m_replica_up = metrics.counter("serve.replica_up")
        self._g_live_replicas = metrics.gauge("serve.live_replicas")
        self._m_shed = metrics.counter("serve.shed")
        self._m_displaced = metrics.counter("serve.displaced")
        self._m_complete = metrics.counter("serve.complete")
        self._m_degrade = metrics.counter("serve.degrade")
        self._m_recover = metrics.counter("serve.recover")
        self._g_queue_depth = metrics.gauge("serve.queue_depth")
        self._g_shed_rate = metrics.gauge("serve.shed_rate")
        self._g_degraded = metrics.gauge("serve.degraded_sessions")
        self._m_batches = metrics.counter("serve.batch.dispatched")
        self._m_batched_items = metrics.counter("serve.batch.items")
        self._m_batch_saved = metrics.counter("serve.batch.saved_ms")
        self._g_batch_size = metrics.gauge("serve.batch.last_size")
        self._g_utilization = [
            metrics.gauge(f"serve.server{replica.index}.utilization")
            for replica in self.pool.replicas
        ]
        if self.meter is not None:
            self.meter.attach(metrics)

    # ------------------------------------------------------------------
    # Facade used by the pipeline
    # ------------------------------------------------------------------
    @property
    def busy_ms_total(self) -> float:
        return self.pool.busy_ms_total

    def is_free_at(self, now_ms: float) -> bool:
        return self.pool.is_free_at(now_ms)

    def is_degraded(self, session_index: int) -> bool:
        return self.degrade.is_degraded(session_index)

    def take_keyframe_request(self, session_index: int) -> bool:
        return self.degrade.take_keyframe_request(session_index)

    def deadline_for(self, send_ms: float, budget_ms: float) -> float:
        return self.admission.deadline_for(send_ms, budget_ms)

    # ------------------------------------------------------------------
    def submit(
        self,
        session_index: int,
        request: OffloadRequest,
        truth_masks: list[InstanceMask],
        image_shape: tuple[int, int],
        send_ms: float,
        arrive_ms: float,
        budget_ms: float,
        now_ms: float,
    ) -> tuple[bool, str]:
        """Admission-check one offload.  Returns ``(admitted, status)``;
        a rejected request never reaches a server and the client should
        be told immediately so it can keep rendering through MAMT."""
        tenant = qos = None
        vstart = 0.0
        if self.tenancy is not None:
            tenant = self.tenancy.tenant_of(session_index)
            qos = self.tenancy.qos_of(session_index)
            vstart = self.fair.vstart(tenant)
        item = ServeItem(
            seq=self._next_seq,
            session_index=session_index,
            request=request,
            truth_masks=truth_masks,
            image_shape=image_shape,
            send_ms=send_ms,
            arrive_ms=arrive_ms,
            deadline_ms=self.deadline_for(send_ms, budget_ms),
            ctx=RequestContext(session_index, request.frame_index, tenant=tenant),
            tenant=tenant,
            qos=qos,
            vstart=vstart,
        )
        self._next_seq += 1
        self.counts["submitted"] += 1
        self._m_submitted.inc()
        self._meter(tenant, "submitted")
        # The uplink already happened by the time admission runs, so the
        # bytes are charged to the tenant whatever the verdict.
        self._meter(tenant, "bytes_up", float(request.payload_bytes))

        if not self.pool.live_replicas():
            self.counts["rejected_no_replica"] += 1
            self._m_reject_no_replica.inc()
            self._meter(tenant, "rejected_no_replica")
            if self.tracer.enabled:
                self.tracer.event(
                    "serve.reject",
                    lane="serve",
                    ts_ms=arrive_ms,
                    frame=item.frame_index,
                    ctx=item.ctx,
                    session=session_index,
                    server=-1,
                    reason=REJECT_NO_REPLICA,
                    deadline_ms=round(item.deadline_ms, 6),
                )
            self._note_failure(session_index, now_ms)
            return False, REJECT_NO_REPLICA

        replica = self.pool.choose(item, now_ms)
        decision = self.admission.check(item, replica, now_ms)
        if decision.admitted:
            self._admit(item, replica, decision.est_completion_ms, arrive_ms)
            return True, ADMIT

        if decision.status == REJECT_QUEUE_FULL:
            # Weighted-fair displacement: a full queue is not a flat
            # rejection when tenancy is on — an arrival with a stronger
            # claim (higher QoS, then earlier SFQ virtual start) evicts
            # the weakest queued item instead, so a saturating tenant
            # cannot hold every slot against the others.
            if self.tenancy is not None and self._try_displace(
                item, replica, decision.est_completion_ms, arrive_ms, now_ms
            ):
                return True, ADMIT
            self.counts["rejected_queue_full"] += 1
            self._m_reject_queue.inc()
            self._meter(tenant, "rejected_queue_full")
        else:
            self.counts["rejected_infeasible"] += 1
            self._m_reject_deadline.inc()
            self._meter(tenant, "rejected_infeasible")
        if self.tracer.enabled:
            self.tracer.event(
                "serve.reject",
                lane="serve",
                ts_ms=arrive_ms,
                frame=item.frame_index,
                ctx=item.ctx,
                session=session_index,
                server=replica.index,
                reason=decision.status,
                deadline_ms=round(item.deadline_ms, 6),
                est_completion_ms=round(decision.est_completion_ms, 6),
            )
        self._note_failure(session_index, now_ms)
        return False, decision.status

    # ------------------------------------------------------------------
    def _meter(self, tenant: str | None, key: str, amount: float = 1) -> None:
        if self.meter is not None and tenant is not None:
            self.meter.add(tenant, key, amount)

    def _admit(
        self,
        item: ServeItem,
        replica: ServerReplica,
        est_completion_ms: float,
        arrive_ms: float,
    ) -> None:
        """Commit one admission: queue slot, counters, fair clock."""
        replica.queue.append(item)
        self.counts["admitted"] += 1
        self._m_admit.inc()
        self._meter(item.tenant, "admitted")
        if self.fair is not None and item.tenant is not None:
            self.fair.commit(item.tenant)
        self.degrade.on_success(item.session_index)
        if self.tracer.enabled:
            attrs = {}
            if item.tenant is not None:
                attrs["vstart"] = round(item.vstart, 6)
            self.tracer.event(
                "serve.admit",
                lane="serve",
                ts_ms=arrive_ms,
                frame=item.frame_index,
                ctx=item.ctx,
                session=item.session_index,
                server=replica.index,
                deadline_ms=round(item.deadline_ms, 6),
                est_completion_ms=round(est_completion_ms, 6),
                queue_depth=len(replica.queue),
                **attrs,
            )

    @staticmethod
    def _claim(item: ServeItem) -> tuple:
        """Strength of an item's hold on a queue slot (smaller wins):
        QoS priority, then SFQ virtual start, then (session, frame) —
        the deterministic tie-break for identical virtual starts."""
        assert item.qos is not None
        return (
            item.qos.priority,
            item.vstart,
            item.session_index,
            item.frame_index,
        )

    def _try_displace(
        self,
        item: ServeItem,
        replica: ServerReplica,
        est_completion_ms: float,
        arrive_ms: float,
        now_ms: float,
    ) -> bool:
        """Evict the weakest-claim queued item in favour of ``item`` if
        the newcomer's claim is strictly stronger.  Shed-exempt
        (premium) queue entries are never displaced."""
        victims = [
            queued for queued in replica.queue if not queued.qos.shed_exempt
        ]
        if not victims:
            return False
        victim = max(victims, key=self._claim)
        if not self._claim(item) < self._claim(victim):
            return False
        replica.queue.remove(victim)
        replica.shed += 1
        self.counts["shed"] += 1
        self.counts["displaced"] += 1
        self._m_shed.inc()
        self._m_displaced.inc()
        self._meter(victim.tenant, "shed")
        self._meter(victim.tenant, "displaced")
        if self.tracer.enabled:
            self.tracer.event(
                "serve.shed",
                lane="serve",
                ts_ms=arrive_ms,
                frame=victim.frame_index,
                ctx=victim.ctx,
                session=victim.session_index,
                server=replica.index,
                deadline_ms=round(victim.deadline_ms, 6),
                reason="displaced",
                by=item.ctx.trace_id if item.ctx is not None else None,
            )
        self._note_failure(victim.session_index, now_ms)
        self._pending_outcomes.append(
            ServeOutcome(kind="shed", item=victim, server_index=replica.index)
        )
        self._admit(item, replica, est_completion_ms, arrive_ms)
        return True

    # ------------------------------------------------------------------
    def advance(self, now_ms: float) -> list[ServeOutcome]:
        """Drain replica queues up to the simulated instant ``now_ms``.

        Returns completions (with detections and completion times — the
        pipeline adds the per-session downlink) and sheds (the pipeline
        notifies the owning client).  Also runs the staggered
        degrade-recovery check against the post-drain queue depth.
        """
        outcomes = self._pending_outcomes
        self._pending_outcomes = []
        for replica in self.pool.replicas:
            if not replica.alive:
                continue
            self._drain_replica(replica, now_ms, outcomes)

        depth = self.pool.queue_depth()
        self._g_queue_depth.set(depth)
        if self.counts["submitted"]:
            self._g_shed_rate.set(self.counts["shed"] / self.counts["submitted"])
        if now_ms > 0.0:
            for replica, gauge in zip(self.pool.replicas, self._g_utilization):
                gauge.set(replica.server.busy_ms_total / now_ms)

        recovered = self.degrade.maybe_recover(now_ms, depth)
        if recovered is not None:
            self._m_recover.inc()
            if self.tracer.enabled:
                self.tracer.event(
                    "serve.recover",
                    lane="serve",
                    ts_ms=now_ms,
                    session=recovered,
                    queue_depth=depth,
                )
        self._g_degraded.set(len(self.degrade.degraded_sessions()))
        return outcomes

    # ------------------------------------------------------------------
    def _drain_replica(
        self, replica: ServerReplica, now_ms: float, outcomes: list[ServeOutcome]
    ) -> None:
        alpha = self.admission.config.est_infer_alpha
        while replica.queue:
            free_at = replica.server.free_at_ms
            earliest = min(item.arrive_ms for item in replica.queue)
            pick_ms = max(free_at, earliest)
            # Commit only picks that are in the simulated past: every
            # not-yet-dispatched request arrives after ``now_ms``, so no
            # later arrival could have contended for this slot.
            if pick_ms > now_ms:
                return
            arrived = sorted(
                (item for item in replica.queue if item.arrive_ms <= pick_ms),
                key=self.pool.policy.service_key,
            )
            chosen = None
            for item in arrived:
                # Shed-exempt (premium) items are dispatched even when
                # late — the tenant paid for the full offload path.
                sheddable = item.qos is None or not item.qos.shed_exempt
                if sheddable and self.admission.should_shed(
                    item, pick_ms, replica.est_infer_ms
                ):
                    replica.queue.remove(item)
                    replica.shed += 1
                    self.counts["shed"] += 1
                    self._m_shed.inc()
                    self._meter(item.tenant, "shed")
                    if self.tracer.enabled:
                        self.tracer.event(
                            "serve.shed",
                            lane="serve",
                            ts_ms=pick_ms,
                            frame=item.frame_index,
                            ctx=item.ctx,
                            session=item.session_index,
                            server=replica.index,
                            deadline_ms=round(item.deadline_ms, 6),
                        )
                    self._note_failure(item.session_index, now_ms)
                    outcomes.append(
                        ServeOutcome(
                            kind="shed", item=item, server_index=replica.index
                        )
                    )
                    continue
                chosen = item
                break
            if chosen is None:
                continue  # everything arrived was shed; re-evaluate queue
            if self.batching is not None:
                if self._dispatch_batch(replica, chosen, pick_ms, now_ms, outcomes, alpha):
                    continue
                return  # batch window still open in simulated time
            replica.queue.remove(chosen)
            free_before = replica.server.free_at_ms
            completion, detections = replica.server.submit(
                chosen.request,
                chosen.truth_masks,
                chosen.image_shape,
                chosen.arrive_ms,
                ctx=chosen.ctx,
            )
            start = max(chosen.arrive_ms, free_before)
            replica.observe_infer(completion - start, alpha)
            replica.completed += 1
            self.counts["completed"] += 1
            self._m_complete.inc()
            self._meter(chosen.tenant, "completed")
            self._meter(chosen.tenant, "server_ms", completion - start)
            outcomes.append(
                ServeOutcome(
                    kind="complete",
                    item=chosen,
                    masks=detections,
                    completion_ms=completion,
                    server_index=replica.index,
                )
            )

    def _dispatch_batch(
        self,
        replica: ServerReplica,
        head: ServeItem,
        pick_ms: float,
        now_ms: float,
        outcomes: list[ServeOutcome],
        alpha: float,
    ) -> bool:
        """Coalesce compatible queued items behind ``head`` and dispatch.

        Deterministic EDF-aware window: walking the rest of the queue in
        service order, a joiner is accepted only if it can be on-device
        before the batch must leave AND growing the batch keeps the
        estimated completion within *every* member's deadline — batching
        never induces a deadline miss that solo service would have met.
        The dispatch instant is ``max(pick, last join, min(window end,
        urgency cutoff))``; if that lies beyond ``now_ms`` the whole
        drain defers (any request submitted at a later tick arrives after
        ``now_ms``, so deferring can only *add* candidates, never reorder
        committed ones — the byte-identical-schedule property of the
        unbatched drain carries over).

        Returns True when a batch was dispatched, False to defer.
        """
        cfg = replica.batching
        assert cfg is not None
        window_end = pick_ms + cfg.window_ms
        members = [head]
        join_max = pick_ms  # head already arrived by pick_ms
        deadline_min = head.deadline_ms
        downlink = self.admission.config.est_downlink_ms

        def urgency(size: int, deadline: float) -> float:
            # Latest start for which a batch of ``size`` still makes the
            # tightest member's deadline (downlink allowance included).
            return deadline - replica.est_batch_ms(size) - downlink

        # The head is dispatched regardless (shedding was decided above);
        # its own urgency only bounds how long we are willing to wait.
        dispatch = max(pick_ms, min(window_end, urgency(1, deadline_min)))
        joiners = sorted(
            (item for item in replica.queue if item is not head),
            key=self.pool.policy.service_key,
        )
        for item in joiners:
            if len(members) >= cfg.max_size:
                break
            join = max(item.arrive_ms, pick_ms)
            if join > dispatch:
                continue  # cannot be on-device before the batch leaves
            cand_deadline = min(deadline_min, item.deadline_ms)
            cand_urgency = urgency(len(members) + 1, cand_deadline)
            if max(pick_ms, join_max, join) > min(window_end, cand_urgency):
                continue  # growing the batch would endanger a member
            members.append(item)
            join_max = max(join_max, join)
            deadline_min = cand_deadline
            dispatch = max(pick_ms, join_max, min(window_end, cand_urgency))
        if len(members) >= cfg.max_size:
            dispatch = max(pick_ms, join_max)  # full — leave immediately
        if dispatch > now_ms:
            return False

        for item in members:
            replica.queue.remove(item)
        free_before = replica.server.free_at_ms
        completion, detections_list, solo_ms = replica.server.submit_batch(
            [
                (item.request, item.truth_masks, item.image_shape, item.arrive_ms, item.ctx)
                for item in members
            ],
            dispatch,
            cfg.alpha,
        )
        batch_ms = completion - max(dispatch, free_before)
        saved_ms = max(sum(solo_ms) - batch_ms, 0.0)
        for solo in solo_ms:
            replica.observe_infer(solo, alpha)
        size = len(members)
        for item in members:
            self._meter(item.tenant, "completed")
            # Batched service cost is split evenly across the members —
            # the per-tenant server_ms sums stay within float tolerance
            # of the pool's busy_ms_total.
            self._meter(item.tenant, "server_ms", batch_ms / size)
        replica.completed += size
        replica.batches += 1
        replica.batched_items += size
        self.counts["completed"] += size
        self.counts["batches"] += 1
        self.counts["batched_items"] += size
        self.counts["batch_saved_ms"] += saved_ms
        self._m_complete.inc(size)
        self._m_batches.inc()
        self._m_batched_items.inc(size)
        self._m_batch_saved.inc(saved_ms)
        self._g_batch_size.set(size)
        if self.tracer.enabled:
            self.tracer.event(
                "serve.batch.dispatch",
                lane="serve",
                ts_ms=dispatch,
                ctx=members[0].ctx,
                server=replica.index,
                size=size,
                wait_ms=round(dispatch - pick_ms, 6),
                batch_ms=round(batch_ms, 6),
                saved_ms=round(saved_ms, 6),
                traces=[item.ctx.trace_id for item in members if item.ctx is not None],
            )
        for item, detections in zip(members, detections_list):
            outcomes.append(
                ServeOutcome(
                    kind="complete",
                    item=item,
                    masks=detections,
                    completion_ms=completion,
                    server_index=replica.index,
                )
            )
        return True

    # ------------------------------------------------------------------
    # Chaos fault surface (repro.chaos.ChaosInjector drives these)
    # ------------------------------------------------------------------
    def kill_replica(self, index: int, now_ms: float) -> int:
        """Take replica ``index`` down at ``now_ms``.

        Queued items are orphaned and shed (returned as ``shed`` outcomes
        at the next :meth:`advance`, so delivery order is unchanged);
        work whose result was already committed by an earlier drain is
        unaffected — in the discrete-event model the completion was
        decided when the item was dispatched.  Returns the number of
        orphaned items.
        """
        replica = self.pool.replicas[index]
        if not replica.alive:
            return 0
        replica.alive = False
        self.counts["replica_kills"] += 1
        self._m_replica_down.inc()
        self._g_live_replicas.set(len(self.pool.live_replicas()))
        orphans = list(replica.queue)
        replica.queue.clear()
        for item in orphans:
            replica.shed += 1
            self.counts["shed"] += 1
            self._m_shed.inc()
            self._meter(item.tenant, "shed")
            if self.tracer.enabled:
                self.tracer.event(
                    "serve.shed",
                    lane="serve",
                    ts_ms=now_ms,
                    frame=item.frame_index,
                    ctx=item.ctx,
                    session=item.session_index,
                    server=replica.index,
                    deadline_ms=round(item.deadline_ms, 6),
                    reason="replica_killed",
                )
            self._note_failure(item.session_index, now_ms)
            self._pending_outcomes.append(
                ServeOutcome(kind="shed", item=item, server_index=replica.index)
            )
        if self.tracer.enabled:
            self.tracer.event(
                "serve.replica_down",
                lane="serve",
                ts_ms=now_ms,
                server=index,
                orphaned=len(orphans),
                live=len(self.pool.live_replicas()),
            )
        return len(orphans)

    def revive_replica(self, index: int, now_ms: float) -> None:
        """Bring a killed replica back into placement rotation."""
        replica = self.pool.replicas[index]
        if replica.alive:
            return
        replica.alive = True
        self.counts["replica_revives"] += 1
        self._m_replica_up.inc()
        self._g_live_replicas.set(len(self.pool.live_replicas()))
        if self.tracer.enabled:
            self.tracer.event(
                "serve.replica_up",
                lane="serve",
                ts_ms=now_ms,
                server=index,
                live=len(self.pool.live_replicas()),
            )

    # ------------------------------------------------------------------
    # Autoscaler surface (repro.tenancy.Autoscaler drives these).  These
    # flips are *capacity management*, not faults: no kill/revive
    # counters, no orphaned work, and the autoscaler itself emits the
    # autoscale.* events around them.
    # ------------------------------------------------------------------
    def set_replica_standby(self, index: int) -> None:
        """Park a live replica out of placement rotation."""
        replica = self.pool.replicas[index]
        if not replica.alive:
            return
        if replica.queue:
            raise ValueError(
                f"cannot stand by replica {index} with "
                f"{len(replica.queue)} queued item(s)"
            )
        replica.alive = False
        self._g_live_replicas.set(len(self.pool.live_replicas()))

    def set_replica_active(self, index: int) -> None:
        """Return a standby replica to placement rotation."""
        replica = self.pool.replicas[index]
        if replica.alive:
            return
        replica.alive = True
        self._g_live_replicas.set(len(self.pool.live_replicas()))

    def set_latency_scale(self, index: int, scale: float) -> None:
        """Inflate (or restore) one replica's service time — the chaos
        straggler fault.  The admission EMA observes the inflated times,
        so feasibility checks steer load away from the straggler."""
        if scale <= 0.0:
            raise ValueError("latency scale must be positive")
        self.pool.replicas[index].server.latency_scale = scale

    def _note_failure(self, session_index: int, now_ms: float) -> None:
        if self.degrade.on_failure(session_index, now_ms):
            self._m_degrade.inc()
            if self.tracer.enabled:
                self.tracer.event(
                    "serve.degrade",
                    lane="serve",
                    ts_ms=now_ms,
                    session=session_index,
                    failures=self.degrade.sessions[
                        session_index
                    ].consecutive_failures,
                )

    # ------------------------------------------------------------------
    def stats(self, duration_ms: float | None = None) -> dict:
        """JSON-clean scheduler summary for BENCH artifacts / CLI."""
        per_server = []
        for replica in self.pool.replicas:
            entry = {
                "index": replica.index,
                "alive": replica.alive,
                "completed": replica.completed,
                "shed": replica.shed,
                "left_in_queue": len(replica.queue),
                "busy_ms": round(replica.server.busy_ms_total, 6),
                "est_infer_ms": round(replica.est_infer_ms, 6),
            }
            if self.batching is not None:
                entry["batches"] = replica.batches
                entry["batched_items"] = replica.batched_items
            if duration_ms:
                entry["utilization"] = round(
                    replica.server.busy_ms_total / duration_ms, 6
                )
            per_server.append(entry)
        submitted = self.counts["submitted"]
        shed = self.counts["shed"]
        out = {
            "policy": self.pool.policy.name,
            "num_servers": len(self.pool),
            "queue_limit": self.admission.config.queue_limit,
            "deadline_horizon": self.admission.config.deadline_horizon,
            "submitted": submitted,
            "admitted": self.counts["admitted"],
            "rejected_queue_full": self.counts["rejected_queue_full"],
            "rejected_infeasible": self.counts["rejected_infeasible"],
            "rejected_no_replica": self.counts["rejected_no_replica"],
            "replica_kills": self.counts["replica_kills"],
            "replica_revives": self.counts["replica_revives"],
            "shed": shed,
            "displaced": self.counts["displaced"],
            "completed": self.counts["completed"],
            "shed_rate": round(shed / submitted, 6) if submitted else 0.0,
            "left_in_queue": self.pool.queue_depth(),
            "degrade": self.degrade.stats(),
            "per_server": per_server,
        }
        if self.tenancy is not None:
            out["tenancy"] = {
                "tenants": self.tenancy.describe(),
                "per_tenant": self.meter.stats(),
                "fair": self.fair.stats(),
            }
        if self.batching is not None:
            completed = self.counts["completed"]
            out["batching"] = {
                "window_ms": self.batching.window_ms,
                "max_size": self.batching.max_size,
                "alpha": self.batching.alpha,
                "batches": self.counts["batches"],
                "batched_items": self.counts["batched_items"],
                "batch_saved_ms": round(self.counts["batch_saved_ms"], 6),
                "mean_batch_size": round(
                    self.counts["batched_items"] / self.counts["batches"], 6
                )
                if self.counts["batches"]
                else 0.0,
                "batched_fraction": round(
                    self.counts["batched_items"] / completed, 6
                )
                if completed
                else 0.0,
            }
        return out
