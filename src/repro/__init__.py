"""edgeIS — edge-assisted real-time instance segmentation (ICDCS 2022).

A from-scratch Python reproduction of the paper's "transfer+infer"
mobile-edge collaboration system and every substrate it depends on:
camera geometry, visual odometry, image features, contour/mask raster
ops, a structurally-simulated Mask R-CNN with contour-instructed
acceleration, tile-based video encoding, wireless channel models and a
discrete-event mobile/edge runtime.

Public entry points::

    from repro import EdgeISSystem, SystemConfig
    from repro.synthetic import make_dataset
    from repro.eval import run_experiment

See DESIGN.md for the module inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"

__all__ = ["EdgeISSystem", "SystemConfig", "__version__"]


def __getattr__(name):
    # Lazy imports keep `import repro.<substrate>` cheap and free of
    # cross-package import cycles.
    if name == "EdgeISSystem":
        from .core.system import EdgeISSystem

        return EdgeISSystem
    if name == "SystemConfig":
        from .core.config import SystemConfig

        return SystemConfig
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
