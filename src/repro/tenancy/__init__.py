"""`repro.tenancy` — multi-tenant identity, QoS, fairness and scaling.

The serving layer (:mod:`repro.serve`) treats every session as an equal;
this package adds the tenant dimension on top of it:

* :mod:`repro.tenancy.qos` — tenant identity and QoS classes
  (``premium`` / ``standard`` / ``best_effort``) mapped onto fleet
  sessions by a :class:`TenantDirectory`;
* :mod:`repro.tenancy.fairness` — start-time fair queueing over
  per-tenant virtual clocks, so a saturating tenant cannot starve the
  others out of the bounded replica queues;
* :mod:`repro.tenancy.metering` — per-tenant counters (admitted,
  rejected, shed, displaced, completed, server-ms, uplink/downlink
  bytes) exported as ``tenant.*`` metrics through :mod:`repro.obs`;
* :mod:`repro.tenancy.autoscaler` — a deterministic queue-driven
  replica autoscaler with warm-up lag and scale-down hysteresis,
  emitting ``autoscale.*`` trace events on the simulated clock.

See ``docs/tenancy.md`` for the design tour.
"""

from .qos import (
    DEFAULT_TENANTS,
    QOS_CLASSES,
    QoSClass,
    TenantDirectory,
    TenantSpec,
    parse_tenants,
)
from .fairness import FairQueue
from .metering import TenantMeter
from .autoscaler import Autoscaler, AutoscalerConfig

__all__ = [
    "QoSClass",
    "QOS_CLASSES",
    "TenantSpec",
    "TenantDirectory",
    "DEFAULT_TENANTS",
    "parse_tenants",
    "FairQueue",
    "TenantMeter",
    "Autoscaler",
    "AutoscalerConfig",
]
