"""Deterministic queue-driven replica autoscaler.

The :class:`~repro.serve.scheduler.ServerPool` is provisioned with
``max_replicas`` servers up front; the autoscaler keeps only a working
set of them live and holds the rest in *standby*.  Once per frame tick
(on the simulated clock — never a wall clock) it reads the fleet's
queue depth and:

* **scales up** when queued work per live replica exceeds
  ``scale_up_depth``: the lowest-index standby replica starts *warming*
  and joins placement only ``warmup_ms`` later — capacity is never free
  or instant;
* **scales down** when the fleet has been at or below
  ``scale_down_depth`` queued requests per live replica for
  ``scale_down_hold_ms`` (hysteresis, so a single idle tick between
  bursts does not flap capacity): the highest-index live replica with an
  empty queue returns to standby, never dropping below ``min_replicas``.

Every transition emits an ``autoscale.*`` trace event and appends to
``replica_series`` — a ``[ms, live]`` step series that is byte-identical
across identical runs (the determinism contract the tenants bench suite
asserts).  Chaos interop falls out of the design: a ``kill_replica``
fault drops the live count, queue depth per live replica rises, and the
autoscaler warms a standby replica to cover the loss.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AutoscalerConfig", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs of the queue-driven scaling loop."""

    # Live-replica floor; the pool size is the ceiling.
    min_replicas: int = 1
    # Scale up when queue depth per live replica exceeds this.
    scale_up_depth: float = 2.0
    # Scale-down eligibility: at or below this depth per live replica.
    scale_down_depth: float = 0.0
    # Simulated ms between the scale-up decision and the replica
    # actually taking placements (model of model-load / container start).
    warmup_ms: float = 200.0
    # The fleet must stay scale-down-eligible this long before capacity
    # is returned (hysteresis against flapping).
    scale_down_hold_ms: float = 1000.0
    # Minimum ms between two scaling decisions in either direction.
    cooldown_ms: float = 100.0

    def validate(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("autoscaler min_replicas must be >= 1")
        if self.warmup_ms < 0.0 or self.scale_down_hold_ms < 0.0 or self.cooldown_ms < 0.0:
            raise ValueError("autoscaler timings must be non-negative")
        if self.scale_up_depth <= self.scale_down_depth:
            raise ValueError(
                "scale_up_depth must exceed scale_down_depth "
                f"({self.scale_up_depth} vs {self.scale_down_depth})"
            )


class Autoscaler:
    """Grows/shrinks a FleetScheduler's live replica set on queue depth."""

    def __init__(self, scheduler, config: AutoscalerConfig | None = None):
        self.config = config or AutoscalerConfig()
        self.config.validate()
        self.scheduler = scheduler
        pool_size = len(scheduler.pool)
        if self.config.min_replicas > pool_size:
            raise ValueError(
                f"autoscaler min_replicas={self.config.min_replicas} exceeds "
                f"pool size {pool_size}"
            )
        # Replicas above the floor start in standby, highest index last
        # so scale-ups activate the lowest-index spare first.
        self._standby: list[int] = list(range(self.config.min_replicas, pool_size))
        for index in self._standby:
            scheduler.set_replica_standby(index)
        # (ready_at_ms, index) warm-ups in flight, kept sorted.
        self._warming: list[tuple[float, int]] = []
        self._low_since_ms: float | None = None
        self._last_decision_ms: float | None = None
        self.scale_ups = 0
        self.scale_downs = 0
        # Step series of the live-replica count: [[ms, live], ...].
        self.replica_series: list[list[float]] = [
            [0.0, len(scheduler.pool.live_replicas())]
        ]

    # ------------------------------------------------------------------
    def _record(self, now_ms: float) -> None:
        live = len(self.scheduler.pool.live_replicas())
        if self.replica_series[-1][1] != live:
            self.replica_series.append([round(now_ms, 6), live])

    def _cooled_down(self, now_ms: float) -> bool:
        return (
            self._last_decision_ms is None
            or now_ms - self._last_decision_ms >= self.config.cooldown_ms
        )

    # ------------------------------------------------------------------
    def tick(self, now_ms: float) -> None:
        """One scaling step at the simulated instant ``now_ms``."""
        tracer = self.scheduler.tracer
        # 1. Finish warm-ups that have become ready.
        ready = [entry for entry in self._warming if entry[0] <= now_ms]
        if ready:
            self._warming = [e for e in self._warming if e[0] > now_ms]
            for ready_at, index in sorted(ready):
                self.scheduler.set_replica_active(index)
                if tracer.enabled:
                    tracer.event(
                        "autoscale.replica_ready",
                        lane="serve",
                        ts_ms=now_ms,
                        server=index,
                        warmed_ms=round(now_ms - ready_at + self.config.warmup_ms, 6),
                        live=len(self.scheduler.pool.live_replicas()),
                    )
            self._record(now_ms)

        depth = self.scheduler.pool.queue_depth()
        live = len(self.scheduler.pool.live_replicas())
        per_live = depth / live if live else float(depth)

        # 2. Scale up: one standby replica per decision.
        if (
            self._standby
            and self._cooled_down(now_ms)
            and (per_live > self.config.scale_up_depth or live == 0)
        ):
            index = self._standby.pop(0)
            ready_at = now_ms + self.config.warmup_ms
            self._warming.append((ready_at, index))
            self._warming.sort()
            self._last_decision_ms = now_ms
            self._low_since_ms = None
            self.scale_ups += 1
            if tracer.enabled:
                tracer.event(
                    "autoscale.scale_up",
                    lane="serve",
                    ts_ms=now_ms,
                    server=index,
                    queue_depth=depth,
                    live=live,
                    ready_at_ms=round(ready_at, 6),
                )
            return

        # 3. Scale down: hysteresis over the low-load condition.
        eligible = (
            live > self.config.min_replicas
            and not self._warming
            and per_live <= self.config.scale_down_depth
        )
        if not eligible:
            self._low_since_ms = None
            return
        if self._low_since_ms is None:
            self._low_since_ms = now_ms
        if (
            now_ms - self._low_since_ms >= self.config.scale_down_hold_ms
            and self._cooled_down(now_ms)
        ):
            idle = [
                replica.index
                for replica in self.scheduler.pool.live_replicas()
                if not replica.queue and replica.server.is_free_at(now_ms)
            ]
            if not idle:
                return
            index = max(idle)
            self.scheduler.set_replica_standby(index)
            self._standby.append(index)
            self._standby.sort()
            self._last_decision_ms = now_ms
            self._low_since_ms = None
            self.scale_downs += 1
            if tracer.enabled:
                tracer.event(
                    "autoscale.scale_down",
                    lane="serve",
                    ts_ms=now_ms,
                    server=index,
                    queue_depth=depth,
                    live=len(self.scheduler.pool.live_replicas()),
                )
            self._record(now_ms)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-clean summary for BENCH artifacts and the CLI table."""
        return {
            "min_replicas": self.config.min_replicas,
            "max_replicas": len(self.scheduler.pool),
            "scale_up_depth": self.config.scale_up_depth,
            "scale_down_depth": self.config.scale_down_depth,
            "warmup_ms": self.config.warmup_ms,
            "scale_down_hold_ms": self.config.scale_down_hold_ms,
            "cooldown_ms": self.config.cooldown_ms,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "warming": len(self._warming),
            "standby": list(self._standby),
            "final_live": len(self.scheduler.pool.live_replicas()),
            "replica_series": [list(point) for point in self.replica_series],
        }
