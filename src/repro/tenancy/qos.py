"""Tenant identity and QoS classes for the multi-tenant serving layer.

A *tenant* is a named group of sessions sharing one service contract.
Each tenant belongs to one of three QoS classes, ordered by how much of
the fleet's scarcity it is expected to absorb:

* ``premium`` — tight deadlines, largest fair-share weight, never shed
  or displaced out of a replica queue, degrades last and recovers first;
* ``standard`` — the default contract;
* ``best_effort`` — smallest weight, displaced first when queues fill,
  degrades to on-device MAMT after a single failure and recovers last.

The mapping from fleet session index to tenant is a
:class:`TenantDirectory`: sessions are assigned to tenants in spec
order, deterministically, so two identical fleet runs see identical
tenant attribution.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "QoSClass",
    "QOS_CLASSES",
    "TenantSpec",
    "TenantDirectory",
    "DEFAULT_TENANTS",
    "parse_tenants",
]


@dataclass(frozen=True)
class QoSClass:
    """One service contract tier.

    ``priority`` orders displacement claims (0 is strongest); ``weight``
    is the start-time-fair-queueing share; ``degrade_scale`` multiplies
    the degrade failure threshold (larger = degrades later); sessions
    recover from degradation in ``priority`` order, strongest first.
    """

    name: str
    priority: int
    weight: float
    shed_exempt: bool
    degrade_scale: float


QOS_CLASSES: dict[str, QoSClass] = {
    "premium": QoSClass(
        "premium", priority=0, weight=4.0, shed_exempt=True, degrade_scale=2.0
    ),
    "standard": QoSClass(
        "standard", priority=1, weight=2.0, shed_exempt=False, degrade_scale=1.0
    ),
    "best_effort": QoSClass(
        "best_effort", priority=2, weight=1.0, shed_exempt=False, degrade_scale=0.5
    ),
}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a name, a QoS class and a session count."""

    name: str
    qos: str
    num_sessions: int

    def __post_init__(self) -> None:
        if self.qos not in QOS_CLASSES:
            raise ValueError(
                f"unknown QoS class {self.qos!r}; pick from {sorted(QOS_CLASSES)}"
            )
        if self.num_sessions < 1:
            raise ValueError(
                f"tenant {self.name!r} needs at least one session, "
                f"got {self.num_sessions}"
            )


class TenantDirectory:
    """Deterministic session-index -> tenant mapping for one fleet run.

    Sessions are assigned contiguously in spec order: the first
    ``specs[0].num_sessions`` indices belong to the first tenant, and so
    on.  Iteration order everywhere is spec order, never dict order of
    a runtime structure.
    """

    def __init__(self, specs: list[TenantSpec] | tuple[TenantSpec, ...]):
        if not specs:
            raise ValueError("TenantDirectory needs at least one TenantSpec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.specs: tuple[TenantSpec, ...] = tuple(specs)
        self._by_session: list[str] = []
        for spec in self.specs:
            self._by_session.extend([spec.name] * spec.num_sessions)
        self._spec_by_name = {spec.name: spec for spec in self.specs}

    @property
    def num_sessions(self) -> int:
        return len(self._by_session)

    @property
    def tenants(self) -> list[str]:
        """Tenant names in spec order."""
        return [spec.name for spec in self.specs]

    def tenant_of(self, session_index: int) -> str:
        return self._by_session[session_index]

    def qos_of(self, session_index: int) -> QoSClass:
        return QOS_CLASSES[self._spec_by_name[self._by_session[session_index]].qos]

    def qos_for(self, tenant: str) -> QoSClass:
        return QOS_CLASSES[self._spec_by_name[tenant].qos]

    def spec_for(self, tenant: str) -> TenantSpec:
        return self._spec_by_name[tenant]

    def sessions_of(self, tenant: str) -> list[int]:
        return [
            index
            for index, name in enumerate(self._by_session)
            if name == tenant
        ]

    def describe(self) -> list[dict]:
        """JSON-clean spec summary in deterministic order."""
        return [
            {
                "name": spec.name,
                "qos": spec.qos,
                "num_sessions": spec.num_sessions,
                "weight": QOS_CLASSES[spec.qos].weight,
            }
            for spec in self.specs
        ]


# The stock mixed-QoS fleet used by CLI defaults and the tenants suite:
# two premium phones, two standard, four best-effort.
DEFAULT_TENANTS: tuple[TenantSpec, ...] = (
    TenantSpec("gold", "premium", 2),
    TenantSpec("silver", "standard", 2),
    TenantSpec("bulk", "best_effort", 4),
)


def parse_tenants(text: str) -> tuple[TenantSpec, ...]:
    """Parse a ``name:qos:count[,name:qos:count...]`` CLI string."""
    specs = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        if len(pieces) != 3:
            raise ValueError(
                f"bad tenant spec {part!r}; expected name:qos:count"
            )
        name, qos, count = pieces
        try:
            num = int(count)
        except ValueError:
            raise ValueError(f"bad session count {count!r} in tenant spec {part!r}")
        specs.append(TenantSpec(name, qos, num))
    if not specs:
        raise ValueError(f"no tenant specs in {text!r}")
    return tuple(specs)
