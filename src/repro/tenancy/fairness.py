"""Start-time fair queueing over per-tenant virtual clocks.

The scheduler's replica queues are bounded; without a fairness layer a
saturating tenant fills them first and everyone else is rejected at the
door.  :class:`FairQueue` implements the SFQ discipline: each tenant
carries a virtual finish time that advances by ``cost / weight`` per
admitted request, and a request's *virtual start* is
``max(global_virtual_time, tenant_finish)``.  A tenant that has consumed
more than its weighted share therefore carries a later virtual start —
and the scheduler uses that as the strength of its claim on scarce queue
slots: when a queue is full, the queued item with the *latest* virtual
start (weakest claim) is displaced in favour of an arrival with an
earlier one.

Virtual time only advances on admission (service actually granted), so
rejected floods do not distort the clock, and an idle tenant re-joining
starts at the current global virtual time rather than deep in the past
(the standard SFQ no-credit-for-idling property).

Everything is pure bookkeeping on plain floats — deterministic and
byte-stable across runs.
"""

from __future__ import annotations

from .qos import TenantDirectory

__all__ = ["FairQueue"]


class FairQueue:
    """Weighted start-time fair queueing across tenants."""

    def __init__(self, directory: TenantDirectory):
        self.directory = directory
        # Per-tenant virtual finish times, keyed in spec order.
        self.finish: dict[str, float] = {name: 0.0 for name in directory.tenants}
        # Global virtual time: the virtual start of the last admission.
        self.virtual_time = 0.0

    def vstart(self, tenant: str) -> float:
        """The virtual start an arrival from ``tenant`` would get now."""
        return max(self.virtual_time, self.finish[tenant])

    def commit(self, tenant: str, cost: float = 1.0) -> float:
        """Grant one admission to ``tenant``; returns its virtual start
        and advances the tenant's finish time by ``cost / weight``."""
        vstart = self.vstart(tenant)
        weight = self.directory.qos_for(tenant).weight
        self.finish[tenant] = vstart + cost / weight
        self.virtual_time = vstart
        return vstart

    def stats(self) -> dict:
        """JSON-clean snapshot for BENCH artifacts."""
        return {
            "virtual_time": round(self.virtual_time, 6),
            "finish": {
                name: round(self.finish[name], 6)
                for name in self.directory.tenants
            },
        }
