"""Per-tenant metering: who consumed what out of the shared fleet.

The scheduler already counts fleet-wide ``serve.*`` totals; the meter
splits every one of those events by tenant, plus the resources behind
them (server milliseconds, uplink/downlink bytes).  Counters are
exported as ``tenant.<name>.<counter>`` metrics through the scheduler's
registry *and* mirrored as plain numbers, so :meth:`stats` reports real
totals even when no tracer is attached — the same dual-bookkeeping
pattern as ``FleetScheduler.counts``.

The reconciliation contract (asserted by the tenants bench suite): for
every request counter, the sum across tenants equals the fleet-level
``serve.*`` total *exactly* — tenancy never loses or double-counts a
request.
"""

from __future__ import annotations

from .qos import TenantDirectory

__all__ = ["TenantMeter", "REQUEST_COUNTERS", "RESOURCE_COUNTERS"]

# Integer request-event counters; sums across tenants must reconcile
# exactly with the scheduler's fleet-level counts.
REQUEST_COUNTERS = (
    "submitted",
    "admitted",
    "rejected_queue_full",
    "rejected_infeasible",
    "rejected_no_replica",
    "shed",
    "displaced",
    "completed",
)

# Resource consumption (floats / byte totals).
RESOURCE_COUNTERS = (
    "server_ms",
    "bytes_up",
    "bytes_down",
)


class TenantMeter:
    """Per-tenant request and resource accounting."""

    def __init__(self, directory: TenantDirectory):
        self.directory = directory
        self.counts: dict[str, dict[str, float]] = {
            name: {key: 0 for key in REQUEST_COUNTERS}
            | {key: 0.0 for key in RESOURCE_COUNTERS}
            for name in directory.tenants
        }
        self._metrics = None
        self._counters: dict[tuple[str, str], object] = {}

    def attach(self, metrics) -> None:
        """(Re)bind a metrics registry; registers one
        ``tenant.<name>.<counter>`` counter per (tenant, key)."""
        self._metrics = metrics
        self._counters = {
            (name, key): metrics.counter(f"tenant.{name}.{key}")
            for name in self.directory.tenants
            for key in REQUEST_COUNTERS + RESOURCE_COUNTERS
        }

    # ------------------------------------------------------------------
    def add(self, tenant: str, key: str, amount: float = 1) -> None:
        self.counts[tenant][key] += amount
        counter = self._counters.get((tenant, key))
        if counter is not None:
            counter.inc(amount)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-clean per-tenant summary in directory (spec) order."""
        out = {}
        for name in self.directory.tenants:
            counts = self.counts[name]
            entry = {key: int(counts[key]) for key in REQUEST_COUNTERS}
            entry["server_ms"] = round(counts["server_ms"], 6)
            entry["bytes_up"] = int(counts["bytes_up"])
            entry["bytes_down"] = int(counts["bytes_down"])
            submitted = entry["submitted"]
            entry["shed_rate"] = (
                round(entry["shed"] / submitted, 6) if submitted else 0.0
            )
            entry["qos"] = self.directory.spec_for(name).qos
            out[name] = entry
        return out

    def totals(self) -> dict:
        """Sums across tenants, for reconciliation against ``serve.*``."""
        out = {key: 0 for key in REQUEST_COUNTERS}
        for name in self.directory.tenants:
            for key in REQUEST_COUNTERS:
                out[key] += int(self.counts[name][key])
        return out
