"""Tile-based frame encoding and content-based fine-grained RoI selection
(CFRS, paper Section V)."""

from .tiles import (
    QUALITY_FIDELITY,
    EncodedFrame,
    TileGrid,
    TileQuality,
    encode_frame,
)
from .cfrs import CFRSConfig, ContentRoiSelector, OffloadDecision
from .mask_codec import decode_masks, encode_masks, encoded_size_bytes

__all__ = [
    "QUALITY_FIDELITY",
    "EncodedFrame",
    "TileGrid",
    "TileQuality",
    "encode_frame",
    "CFRSConfig",
    "ContentRoiSelector",
    "OffloadDecision",
    "decode_masks",
    "encode_masks",
    "encoded_size_bytes",
]
