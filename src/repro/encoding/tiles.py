"""Tile-level frame encoding with a content-entropy rate model.

The paper encodes offloaded frames with Kvazaar (HEVC) at tile granularity,
giving each region a compression level matched to its content value
(Fig. 8d).  Here a frame is divided into fixed-size tiles; each tile's
encoded size is its pixel count times a bits-per-pixel estimate derived
from the tile's intensity entropy and the assigned quality level.  The
absolute rate constants are calibrated to HEVC-intra-like sizes (a
320x240 all-high frame lands around 20-25 kB).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from ..image.frame import block_entropy

__all__ = ["TileQuality", "TileGrid", "EncodedFrame", "encode_frame"]


class TileQuality(IntEnum):
    """Compression level of a tile (higher = more bits kept)."""

    SKIP = 0  # not transmitted / fully flattened
    LOW = 1
    MEDIUM = 2
    HIGH = 3


# bits per pixel = entropy_bits * factor[quality]
_QUALITY_FACTOR = {
    TileQuality.SKIP: 0.004,
    TileQuality.LOW: 0.06,
    TileQuality.MEDIUM: 0.22,
    TileQuality.HIGH: 0.55,
}

# Offloaded frames are encoded at the device's *capture* resolution
# (720p-1080p in the paper's deployment), not at the simulation raster.
# The per-tile content statistics scale with the pixel budget, so encoded
# sizes are multiplied by this factor (≈ 720p / 320x240).
CAPTURE_SCALE = 6.0

# Relative segmentation usefulness of a tile at each quality: the edge
# model's mask quality on an object degrades when its tiles arrive coarse.
QUALITY_FIDELITY = {
    TileQuality.SKIP: 0.0,
    TileQuality.LOW: 0.55,
    TileQuality.MEDIUM: 0.85,
    TileQuality.HIGH: 1.0,
}


@dataclass
class TileGrid:
    """Fixed tiling of a frame."""

    frame_height: int
    frame_width: int
    tile_size: int = 16

    @property
    def rows(self) -> int:
        return int(np.ceil(self.frame_height / self.tile_size))

    @property
    def cols(self) -> int:
        return int(np.ceil(self.frame_width / self.tile_size))

    @property
    def num_tiles(self) -> int:
        return self.rows * self.cols

    def tile_of_pixel(self, row: float, col: float) -> tuple[int, int]:
        return (
            int(np.clip(row // self.tile_size, 0, self.rows - 1)),
            int(np.clip(col // self.tile_size, 0, self.cols - 1)),
        )

    def tiles_overlapping_box(self, box) -> tuple[slice, slice]:
        """Tile-index slices covering box (x0, y0, x1, y1)."""
        x0, y0, x1, y1 = box
        r0 = int(np.clip(y0 // self.tile_size, 0, self.rows - 1))
        c0 = int(np.clip(x0 // self.tile_size, 0, self.cols - 1))
        r1 = int(np.clip(np.ceil(y1 / self.tile_size), r0 + 1, self.rows))
        c1 = int(np.clip(np.ceil(x1 / self.tile_size), c0 + 1, self.cols))
        return slice(r0, r1), slice(c0, c1)

    def coverage_mask_from_rastermask(self, mask: np.ndarray) -> np.ndarray:
        """(rows, cols) boolean map of tiles containing any True pixel."""
        out = np.zeros((self.rows, self.cols), dtype=bool)
        rows_idx, cols_idx = np.nonzero(mask)
        if len(rows_idx):
            out[rows_idx // self.tile_size, cols_idx // self.tile_size] = True
        return out

    def tile_pixel_counts(self) -> np.ndarray:
        """Pixel count of each tile (edge tiles may be smaller)."""
        heights = np.full(self.rows, self.tile_size)
        heights[-1] = self.frame_height - (self.rows - 1) * self.tile_size
        widths = np.full(self.cols, self.tile_size)
        widths[-1] = self.frame_width - (self.cols - 1) * self.tile_size
        return np.outer(heights, widths)


@dataclass
class EncodedFrame:
    """Result of tile-encoding one frame."""

    frame_index: int
    quality_map: np.ndarray  # (rows, cols) of TileQuality ints
    tile_bytes: np.ndarray  # (rows, cols) float bytes
    grid: TileGrid

    @property
    def total_bytes(self) -> int:
        return int(self.tile_bytes.sum()) + 200  # container/header overhead

    def quality_fraction(self, quality: TileQuality) -> float:
        return float((self.quality_map == int(quality)).mean())

    def fidelity_for_box(self, box) -> float:
        """Mean fidelity of the tiles under a box — drives how well the
        edge model can segment the object inside it."""
        rows, cols = self.grid.tiles_overlapping_box(box)
        qualities = self.quality_map[rows, cols].ravel()
        if qualities.size == 0:
            return 0.0
        return float(
            np.mean([QUALITY_FIDELITY[TileQuality(int(q))] for q in qualities])
        )


def encode_frame(
    gray: np.ndarray,
    quality_map: np.ndarray,
    grid: TileGrid,
    frame_index: int = 0,
) -> EncodedFrame:
    """Encode a grayscale frame under a per-tile quality assignment."""
    entropy = block_entropy(gray, grid.tile_size)
    if entropy.shape != (grid.rows, grid.cols):
        raise ValueError("quality map / grid / frame size mismatch")
    if quality_map.shape != entropy.shape:
        raise ValueError("quality map shape mismatch")
    pixel_counts = grid.tile_pixel_counts()
    factors = np.vectorize(lambda q: _QUALITY_FACTOR[TileQuality(int(q))])(quality_map)
    bits = entropy * factors * pixel_counts * CAPTURE_SCALE
    return EncodedFrame(
        frame_index=frame_index,
        quality_map=quality_map.astype(int),
        tile_bytes=bits / 8.0,
        grid=grid,
    )
