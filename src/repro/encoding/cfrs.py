"""Content-based Fine-grained RoI Selection (CFRS, paper Section V).

Decides *when* to offload a frame and *how* to compress it:

* **Offload trigger** — the fraction of features matched to unlabeled map
  points exceeds ``t`` (= 0.25 in the paper), a tracked object's pose has
  changed significantly since its last annotation, or a fallback interval
  elapses (the edge must refresh masks occasionally even in a static
  scene).
* **Region partition** (Fig. 8c) — tiles under object contours and new
  content are encoded HIGH, object interiors MEDIUM, everything else LOW.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from ..image.contours import mask_boundary
from ..image.masks import InstanceMask
from ..obs.trace import NULL_TRACER, Tracer
from .tiles import EncodedFrame, TileGrid, TileQuality, encode_frame

__all__ = ["CFRSConfig", "OffloadDecision", "ContentRoiSelector"]


@dataclass
class CFRSConfig:
    unlabeled_threshold: float = 0.25  # the paper's t
    object_motion_trigger: float = 0.03  # accumulated motion (scene-depth units)
    max_interval_frames: int = 20  # fallback refresh cadence
    min_interval_frames: int = 6  # don't flood the uplink
    tile_size: int = 16
    contour_dilation_tiles: int = 1


@dataclass
class OffloadDecision:
    should_send: bool
    reason: str
    new_area_boxes: list[np.ndarray] = field(default_factory=list)


class ContentRoiSelector:
    """The CFRS policy object owned by the mobile client."""

    def __init__(
        self,
        frame_shape: tuple[int, int],
        config: CFRSConfig | None = None,
        tracer: Tracer | None = None,
    ):
        self.config = config or CFRSConfig()
        self.grid = TileGrid(frame_shape[0], frame_shape[1], self.config.tile_size)
        self._last_offload_frame = -(10**9)
        self._motion_baseline: dict[int, float] = {}
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._h_offload_bytes = self._tracer.metrics.histogram(
            "cfrs.offload_bytes",
            buckets=(1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5),
        )

    # ------------------------------------------------------------------
    # Offload timing
    # ------------------------------------------------------------------
    def decide(
        self,
        frame_index: int,
        unlabeled_fraction: float,
        object_motion: dict[int, float],
        unmatched_pixels: np.ndarray,
        is_tracking: bool,
    ) -> OffloadDecision:
        """Decide whether this frame should be transmitted to the edge.

        ``object_motion`` maps instance id -> accumulated translation (in
        scene-depth-normalized units) since the track was created;
        ``unmatched_pixels`` are the (u, v) positions of features that
        matched nothing or unlabeled points (the yellow points of Fig. 8b).
        """
        decision = self._decide(
            frame_index, unlabeled_fraction, object_motion, unmatched_pixels, is_tracking
        )
        metrics = self._tracer.metrics
        metrics.counter(f"cfrs.decision.{decision.reason}").inc()
        if decision.should_send:
            metrics.counter("cfrs.offloads").inc()
        return decision

    def _decide(
        self,
        frame_index: int,
        unlabeled_fraction: float,
        object_motion: dict[int, float],
        unmatched_pixels: np.ndarray,
        is_tracking: bool,
    ) -> OffloadDecision:
        since_last = frame_index - self._last_offload_frame
        if since_last < self.config.min_interval_frames:
            return OffloadDecision(False, "rate-limited")
        if not is_tracking:
            # During initialization the edge needs frames for the two
            # initial masks; send at the fallback cadence.
            if since_last >= self.config.min_interval_frames:
                self._last_offload_frame = frame_index
                return OffloadDecision(True, "initializing")
            return OffloadDecision(False, "initializing-wait")

        if unlabeled_fraction > self.config.unlabeled_threshold:
            self._last_offload_frame = frame_index
            return OffloadDecision(
                True, "new-content", self.new_area_boxes(unmatched_pixels)
            )
        for instance_id, motion in object_motion.items():
            baseline = self._motion_baseline.get(instance_id, 0.0)
            if motion - baseline > self.config.object_motion_trigger:
                self._motion_baseline[instance_id] = motion
                self._last_offload_frame = frame_index
                return OffloadDecision(
                    True, "object-motion", self.new_area_boxes(unmatched_pixels)
                )
        if since_last >= self.config.max_interval_frames:
            self._last_offload_frame = frame_index
            return OffloadDecision(
                True, "refresh", self.new_area_boxes(unmatched_pixels)
            )
        return OffloadDecision(False, "covered")

    def new_area_boxes(self, unmatched_pixels: np.ndarray) -> list[np.ndarray]:
        """Cluster unmatched-feature pixels into rectangular new-content
        areas (tile-resolution connected components)."""
        unmatched_pixels = np.asarray(unmatched_pixels, dtype=float).reshape(-1, 2)
        if len(unmatched_pixels) == 0:
            return []
        occupancy = np.zeros((self.grid.rows, self.grid.cols), dtype=bool)
        for u, v in unmatched_pixels:
            r, c = self.grid.tile_of_pixel(v, u)
            occupancy[r, c] = True
        # Bridge one-tile gaps, then group; components that trace back to
        # a single occupied tile are treated as detector noise.
        dilated = ndimage.binary_dilation(occupancy, iterations=1)
        labeled, count = ndimage.label(dilated)
        boxes = []
        for component in range(1, count + 1):
            member = labeled == component
            if (member & occupancy).sum() < 2:  # single stray tile: noise
                continue
            rows, cols = np.nonzero(member & occupancy)
            boxes.append(
                np.array(
                    [
                        cols.min() * self.grid.tile_size,
                        rows.min() * self.grid.tile_size,
                        (cols.max() + 1) * self.grid.tile_size,
                        (rows.max() + 1) * self.grid.tile_size,
                    ],
                    dtype=float,
                )
            )
        return boxes

    # ------------------------------------------------------------------
    # Region partition + encoding (Fig. 8c/8d)
    # ------------------------------------------------------------------
    def quality_map(
        self,
        masks: list[InstanceMask],
        new_area_boxes: list[np.ndarray],
    ) -> np.ndarray:
        qualities = np.full(
            (self.grid.rows, self.grid.cols), int(TileQuality.LOW), dtype=int
        )
        for mask in masks:
            interior = self.grid.coverage_mask_from_rastermask(mask.mask)
            qualities[interior] = np.maximum(
                qualities[interior], int(TileQuality.MEDIUM)
            )
            contour = self.grid.coverage_mask_from_rastermask(mask_boundary(mask.mask))
            if self.config.contour_dilation_tiles:
                contour = ndimage.binary_dilation(
                    contour, iterations=self.config.contour_dilation_tiles
                )
            qualities[contour] = int(TileQuality.HIGH)
        for box in new_area_boxes:
            rows, cols = self.grid.tiles_overlapping_box(box)
            qualities[rows, cols] = int(TileQuality.HIGH)
        return qualities

    def encode(
        self,
        frame_index: int,
        gray: np.ndarray,
        masks: list[InstanceMask],
        new_area_boxes: list[np.ndarray],
    ) -> EncodedFrame:
        encoded = encode_frame(
            gray, self.quality_map(masks, new_area_boxes), self.grid, frame_index
        )
        self._record_budget(encoded)
        return encoded

    def _record_budget(self, encoded: EncodedFrame) -> None:
        """Trace the per-region byte budget of one encoded offload."""
        self._h_offload_bytes.observe(encoded.total_bytes)
        tracer = self._tracer
        if not tracer.enabled:
            return
        attrs = {"total_bytes": int(encoded.total_bytes)}
        for quality in (TileQuality.HIGH, TileQuality.MEDIUM, TileQuality.LOW):
            region = encoded.quality_map == int(quality)
            attrs[f"bytes_{quality.name.lower()}"] = int(
                encoded.tile_bytes[region].sum()
            )
            attrs[f"tiles_{quality.name.lower()}"] = int(region.sum())
        tracer.event(
            "cfrs.encode", lane="client", frame=encoded.frame_index, **attrs
        )

    def encode_uniform(
        self, frame_index: int, gray: np.ndarray, quality: TileQuality
    ) -> EncodedFrame:
        """Whole-frame encoding at one quality (baseline systems)."""
        qualities = np.full((self.grid.rows, self.grid.cols), int(quality), dtype=int)
        encoded = encode_frame(gray, qualities, self.grid, frame_index)
        self._record_budget(encoded)
        return encoded
