"""Contour-vertex serialization of instance masks.

The paper sends segmentation results back to the device as serialized
contour vertices ("For information such as vertices of the contour, we
use C++ Boost for the serialization", Section VI-A).  This module
implements that wire format: each instance becomes its class label, score
and a polyline of contour vertices (delta-encoded 16-bit integers), and
the decoder re-rasterizes with the same scan-fill the transfer engine
uses.  The byte counts of the encoded payloads drive the pipeline's
downlink model.
"""

from __future__ import annotations

import struct

import numpy as np

from ..image.contours import fill_contour, find_contours, resample_contour
from ..image.masks import InstanceMask

__all__ = ["encode_masks", "decode_masks", "encoded_size_bytes"]

_MAGIC = b"eIS1"
_MAX_VERTICES = 256


def _contours_for_mask(mask: np.ndarray) -> list[np.ndarray]:
    """Outer contours, largest first, resampled to a bounded vertex count."""
    contours = find_contours(mask, min_length=4)
    contours.sort(key=len, reverse=True)
    out = []
    for contour in contours[:4]:  # at most 4 components per instance
        if len(contour) > _MAX_VERTICES:
            contour = resample_contour(contour, _MAX_VERTICES)
        out.append(np.asarray(contour, dtype=float))
    return out


def encode_masks(masks: list[InstanceMask]) -> bytes:
    """Serialize instance masks as delta-encoded contour polylines."""
    chunks = [_MAGIC, struct.pack("<H", len(masks))]
    for instance in masks:
        label_bytes = instance.class_label.encode("utf-8")[:255]
        contours = _contours_for_mask(instance.mask)
        chunks.append(
            struct.pack(
                "<iHB B",
                int(instance.instance_id),
                int(round(np.clip(instance.score, 0, 1) * 65535)),
                len(label_bytes),
                len(contours),
            )
        )
        chunks.append(label_bytes)
        for contour in contours:
            vertices = np.round(contour).astype(np.int32)
            chunks.append(struct.pack("<H", len(vertices)))
            if len(vertices) == 0:
                continue
            chunks.append(struct.pack("<hh", *vertices[0]))
            deltas = np.diff(vertices, axis=0).astype(np.int16)
            chunks.append(deltas.tobytes())
    return b"".join(chunks)


def decode_masks(payload: bytes, shape: tuple[int, int]) -> list[InstanceMask]:
    """Inverse of :func:`encode_masks`; re-rasterizes each contour."""
    if payload[:4] != _MAGIC:
        raise ValueError("not an edgeIS mask payload")
    offset = 4
    (count,) = struct.unpack_from("<H", payload, offset)
    offset += 2
    masks: list[InstanceMask] = []
    for _ in range(count):
        instance_id, score_q, label_len, num_contours = struct.unpack_from(
            "<iHBB", payload, offset
        )
        offset += 8
        class_label = payload[offset : offset + label_len].decode("utf-8")
        offset += label_len
        raster = np.zeros(shape, dtype=bool)
        for _ in range(num_contours):
            (num_vertices,) = struct.unpack_from("<H", payload, offset)
            offset += 2
            if num_vertices == 0:
                continue
            first = struct.unpack_from("<hh", payload, offset)
            offset += 4
            deltas = np.frombuffer(
                payload, dtype=np.int16, count=(num_vertices - 1) * 2, offset=offset
            ).reshape(-1, 2)
            offset += deltas.nbytes
            vertices = np.vstack([[first], deltas]).cumsum(axis=0)
            raster |= fill_contour(vertices.astype(float), shape)
        masks.append(
            InstanceMask(
                instance_id=instance_id,
                class_label=class_label,
                mask=raster,
                score=score_q / 65535.0,
            )
        )
    return masks


def encoded_size_bytes(masks: list[InstanceMask]) -> int:
    """Size of the wire payload for the downlink latency model."""
    return len(encode_masks(masks))
