"""Chaos fault injectors for the serving stack.

A fault is a *declarative* event on the simulated clock: kill a
:class:`~repro.serve.scheduler.ServerPool` replica at ``t`` (and revive
it ``duration_ms`` later), inflate one replica's service time (a
straggler), or partition a channel for a window.  The
:class:`ChaosInjector` owns the schedule and applies each fault when the
fleet's frame clock crosses its instant, so a fault lands at exactly the
same tick on every run — chaos here is adversarial, never random.

Two properties make the injection layer safe to keep always-on:

* **No RNG draws.**  Faults never touch a random stream; a run with an
  empty fault list is byte-identical to a run without the injector.
* **Exact sim-clock semantics.**  Channel stalls are pre-scheduled on
  the :class:`~repro.network.channel.Channel` itself (the stall window
  applies to the *transfer initiation* time, not the frame tick), while
  scheduler faults apply at the first tick at/after ``at_ms`` — the same
  discrete-event convention the scheduler uses for everything else.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.trace import NULL_TRACER, Tracer

__all__ = [
    "FaultSpec",
    "FAULT_KINDS",
    "FAULTS",
    "make_faults",
    "ChaosInjector",
]

FAULT_KINDS = ("kill_replica", "straggler", "stall_channel")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``target`` selects a replica index for server faults, or a session
    index for channel faults (``-1`` = every session's channel).
    ``factor`` only applies to ``straggler`` (service-time multiplier).
    """

    kind: str
    at_ms: float
    duration_ms: float = 0.0
    target: int = 0
    factor: float = 4.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick from {FAULT_KINDS}"
            )
        if self.at_ms < 0.0:
            raise ValueError("fault at_ms must be non-negative")
        if self.kind != "kill_replica" and self.duration_ms <= 0.0:
            raise ValueError(f"{self.kind} needs a positive duration_ms")
        if self.kind == "straggler" and self.factor <= 0.0:
            raise ValueError("straggler factor must be positive")


# Named fault programs for the chaos bench matrix.  Instants are chosen
# for the suite's 56-frame / 30 fps cells (~1866 ms of simulated time):
# every fault starts after the SLO warmup, ends with enough budget left
# for the degrade manager's staggered recovery (min_degraded_ms=300) to
# complete inside the run.
FAULTS: dict[str, tuple[FaultSpec, ...]] = {
    "none": (),
    "replica-outage": (
        FaultSpec("kill_replica", at_ms=500.0, duration_ms=700.0, target=0),
    ),
    "straggler": (
        FaultSpec("straggler", at_ms=400.0, duration_ms=900.0, target=0, factor=4.0),
    ),
    "uplink-stall": (
        FaultSpec("stall_channel", at_ms=500.0, duration_ms=400.0, target=-1),
    ),
}


def make_faults(name: str) -> tuple[FaultSpec, ...]:
    faults = FAULTS.get(name)
    if faults is None:
        raise ValueError(f"unknown fault program {name!r}; pick from {sorted(FAULTS)}")
    return faults


class ChaosInjector:
    """Applies a fault schedule against a live fleet run.

    Usage: construct with the fault list, :meth:`bind` to the scheduler
    and sessions once they exist, then let the pipeline call
    :meth:`tick` at the top of every frame tick.  Every applied fault is
    recorded twice: as a ``chaos.*`` trace event (lane ``"chaos"``) for
    the timeline, and as a JSON-clean dict in :attr:`log` for the BENCH
    artifact.
    """

    def __init__(self, faults: tuple[FaultSpec, ...] = (), tracer: Tracer | None = None):
        self.faults = tuple(faults)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.log: list[dict] = []
        self._scheduler = None
        self._sessions: list = []
        # Per-fault lifecycle flags, parallel to ``self.faults``.
        self._started = [False] * len(self.faults)
        self._ended = [False] * len(self.faults)

    # ------------------------------------------------------------------
    def bind(self, scheduler, sessions, tracer: Tracer | None = None) -> None:
        """Attach the injector to a concrete fleet.

        Channel stalls are pre-scheduled here with their exact instants
        (the channel applies them by transfer-initiation time); server
        faults stay pending until :meth:`tick` crosses them.
        """
        self._scheduler = scheduler
        self._sessions = list(sessions)
        if tracer is not None:
            self.tracer = tracer
        for fault in self.faults:
            if fault.kind != "stall_channel":
                continue
            for index, session in enumerate(self._sessions):
                if fault.target not in (-1, index):
                    continue
                session.channel.schedule_stall(fault.at_ms, fault.duration_ms)

    def note(self, event: str, **fields) -> None:
        """Record a scenario-level marker (e.g. a scheduled handoff) in
        the chaos log and on the trace."""
        entry = {"event": event, **fields}
        self.log.append(entry)
        if self.tracer.enabled:
            self.tracer.event(f"chaos.{event}", lane="chaos", **fields)

    # ------------------------------------------------------------------
    def tick(self, now_ms: float) -> None:
        """Apply every fault whose start/end instant the clock crossed."""
        for index, fault in enumerate(self.faults):
            if not self._started[index] and now_ms >= fault.at_ms:
                self._started[index] = True
                self._apply_start(fault, now_ms)
            if (
                self._started[index]
                and not self._ended[index]
                and fault.duration_ms > 0.0
                and now_ms >= fault.at_ms + fault.duration_ms
            ):
                self._ended[index] = True
                self._apply_end(fault, now_ms)

    def _apply_start(self, fault: FaultSpec, now_ms: float) -> None:
        # ``until_ms`` is the *scheduled* window end: lineage analysis
        # needs the full fault window even when the run ends mid-fault
        # (the matching ``*_off`` / ``*_revived`` note never fires).
        until = round(fault.at_ms + fault.duration_ms, 6) if fault.duration_ms else None
        if fault.kind == "kill_replica":
            orphaned = self._scheduler.kill_replica(fault.target, now_ms)
            self.note(
                "replica_killed",
                ts_ms=round(now_ms, 6),
                server=fault.target,
                orphaned=orphaned,
                **({"until_ms": until} if until is not None else {}),
            )
        elif fault.kind == "straggler":
            self._scheduler.set_latency_scale(fault.target, fault.factor)
            self.note(
                "straggler_on",
                ts_ms=round(now_ms, 6),
                server=fault.target,
                factor=fault.factor,
                **({"until_ms": until} if until is not None else {}),
            )
        elif fault.kind == "stall_channel":
            # The stall itself was pre-scheduled in bind(); this entry
            # marks the window opening on the shared timeline.
            self.note(
                "channel_stalled",
                ts_ms=round(now_ms, 6),
                session=fault.target,
                duration_ms=round(fault.duration_ms, 6),
                **({"until_ms": until} if until is not None else {}),
            )

    def _apply_end(self, fault: FaultSpec, now_ms: float) -> None:
        if fault.kind == "kill_replica":
            self._scheduler.revive_replica(fault.target, now_ms)
            self.note("replica_revived", ts_ms=round(now_ms, 6), server=fault.target)
        elif fault.kind == "straggler":
            self._scheduler.set_latency_scale(fault.target, 1.0)
            self.note("straggler_off", ts_ms=round(now_ms, 6), server=fault.target)
        elif fault.kind == "stall_channel":
            self.note(
                "channel_restored", ts_ms=round(now_ms, 6), session=fault.target
            )
