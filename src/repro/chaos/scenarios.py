"""Declarative adversarial scenario registry.

Each :class:`ScenarioSpec` names a composition of world, trajectory and
channel knobs that stresses a specific failure mode of the edge-offload
pipeline (docs/scenarios.md walks through all of them):

* ``crowded-occlusion`` — a crowd of patrol/crossing persons layered on
  the cluttered ``xiph_like`` scene: masks overlap, instances occlude
  each other, and the mask count inflates every offload payload.
* ``whip-pan`` — the ``whip`` motion grade: violent yaw oscillation
  starves the VO frontend of stable feature tracks (the simulator's
  motion-blur surrogate) and forces frequent keyframe offloads.
* ``transit`` — extra walkers that cross the camera frustum and park
  outside it, so instances enter and leave the frame mid-sequence and
  tracked masks must be dropped/re-acquired.
* ``lighting-flip`` — a global illumination drop at a fixed instant via
  texture wrappers (the renderer's ``set_time`` hook): appearance-based
  association degrades on one exact frame.
* ``wifi-to-lte`` — a mid-session WiFi -> LTE handoff scheduled on every
  session's channel: uplink bandwidth collapses and RTT quadruples at
  ``handoff_at_ms``.

A spec is pure data; :func:`build_video` and :func:`apply_network` turn
it into concrete simulator objects.  Everything stays seeded and
deterministic — the chaos matrix must be byte-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..synthetic.datasets import (
    _PALETTE,
    _WORLD_BUILDERS,
    _trajectory_for,
    default_camera,
)
from ..synthetic.objects import (
    OrbitMotion,
    ProceduralTexture,
    SceneObject,
    WaypointMotion,
    make_box_mesh,
)
from ..synthetic.world import SyntheticVideo, World

__all__ = [
    "ScenarioSpec",
    "SCENARIOS",
    "make_scenario",
    "build_video",
    "apply_network",
    "LightingShiftTexture",
]

# Chaos-added instances start well above every catalog id (base worlds
# stay <= 21), so ground-truth masks never collide.
_CHAOS_BASE_ID = 40


@dataclass(frozen=True)
class ScenarioSpec:
    """One named adversarial scene composition (pure data)."""

    name: str
    summary: str
    dataset: str = "xiph_like"
    motion_grade: str = "walk"
    network: str = "wifi_2.4ghz"
    crowd: int = 0  # extra orbiting/crossing persons (occlusion pressure)
    transients: int = 0  # walkers that enter and leave the frustum
    lighting_shift_at_s: float | None = None
    lighting_gain: float = 1.0
    handoff_to: str | None = None
    handoff_at_ms: float = 0.0


SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="crowded-occlusion",
            summary="crowd of crossing persons over the cluttered xiph scene",
            dataset="xiph_like",
            crowd=5,
        ),
        ScenarioSpec(
            name="whip-pan",
            summary="violent yaw oscillation starves VO feature tracks",
            dataset="davis_like",
            motion_grade="whip",
        ),
        ScenarioSpec(
            name="transit",
            summary="walkers enter and leave the frustum mid-sequence",
            dataset="ar_indoor",
            transients=4,
        ),
        ScenarioSpec(
            name="lighting-flip",
            summary="global illumination drops at t=0.8s",
            dataset="xiph_like",
            lighting_shift_at_s=0.8,
            lighting_gain=0.45,
        ),
        ScenarioSpec(
            name="wifi-to-lte",
            summary="WiFi 5GHz to LTE handoff mid-session",
            dataset="ar_indoor",
            network="wifi_5ghz",
            handoff_to="lte",
            handoff_at_ms=700.0,
        ),
    )
}


def make_scenario(name: str) -> ScenarioSpec:
    spec = SCENARIOS.get(name)
    if spec is None:
        raise ValueError(f"unknown scenario {name!r}; pick from {sorted(SCENARIOS)}")
    return spec


class LightingShiftTexture:
    """Wraps a texture and scales its output after a fixed instant.

    The renderer calls :meth:`set_time` before sampling any texel of a
    frame, so the gain flips on one exact frame for every object at
    once — a scene-wide lighting change, not a per-object fade.
    """

    def __init__(self, inner, at_s: float, gain: float):
        self.inner = inner
        self.at_s = at_s
        self.gain = gain
        self._time = 0.0

    def set_time(self, time: float) -> None:
        self._time = time

    def sample(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        texel = self.inner.sample(u, v)
        if self._time >= self.at_s:
            return texel * self.gain
        return texel


def _person(instance_id: int, motion, seed: int) -> SceneObject:
    return SceneObject(
        instance_id=instance_id,
        class_label="person",
        mesh=make_box_mesh((0.6, 1.7, 0.5)),
        texture=ProceduralTexture(
            _PALETTE[instance_id % len(_PALETTE)], seed=seed
        ),
        motion=motion,
    )


def _crowd_objects(count: int, seed: int) -> list[SceneObject]:
    """Orbiting persons at staggered radii/phases around the scene
    center: their paths repeatedly cross in the camera's view, stacking
    occlusions between themselves and the static clutter."""
    objects = []
    for k in range(count):
        motion = OrbitMotion(
            center=np.array([0.3 + 0.4 * (k % 3), -0.85, 6.0 + 0.5 * (k % 2)]),
            radius=1.8 + 0.45 * k,
            angular_speed=0.35 + 0.06 * k,
            phase=2.0 * np.pi * k / max(count, 1),
        )
        objects.append(_person(_CHAOS_BASE_ID + k, motion, seed + 100 + k))
    return objects


def _transient_objects(count: int, seed: int) -> list[SceneObject]:
    """Walkers that cross the frustum and park far outside it, so their
    instances appear and then disappear from the ground truth."""
    objects = []
    for k in range(count):
        side = 1.0 if k % 2 == 0 else -1.0
        start = k * 0.7  # staggered entries
        times = np.array([0.0, start, start + 2.2, start + 2.3])
        positions = np.array(
            [
                [side * 14.0, -0.85, 5.0 + 0.8 * k],  # parked off-frustum
                [side * 14.0, -0.85, 5.0 + 0.8 * k],
                [-side * 14.0, -0.85, 5.0 + 0.8 * k],  # crossed to the far side
                [-side * 14.0, -0.85, 5.0 + 0.8 * k],
            ]
        )
        motion = WaypointMotion(times, positions)
        objects.append(_person(_CHAOS_BASE_ID + 10 + k, motion, seed + 120 + k))
    return objects


def build_video(
    spec: ScenarioSpec,
    num_frames: int,
    resolution: tuple[int, int] = (320, 240),
    seed: int = 0,
    fps: float = 30.0,
) -> SyntheticVideo:
    """Realize a scenario's world+trajectory as a renderable video."""
    base = _WORLD_BUILDERS[spec.dataset](seed, True)
    objects = list(base.objects)
    if spec.crowd:
        objects.extend(_crowd_objects(spec.crowd, seed))
    if spec.transients:
        objects.extend(_transient_objects(spec.transients, seed))
    if spec.lighting_shift_at_s is not None:
        for scene_object in objects:
            scene_object.texture = LightingShiftTexture(
                scene_object.texture, spec.lighting_shift_at_s, spec.lighting_gain
            )
    # Rebuild the world so feature sites cover the chaos objects too.
    world = World(objects, seed=seed)
    trajectory = _trajectory_for(spec.dataset, spec.motion_grade)
    return SyntheticVideo(
        world=world,
        trajectory=trajectory,
        camera=default_camera(resolution),
        num_frames=num_frames,
        fps=fps,
        name=f"chaos[{spec.name}]",
    )


def apply_network(spec: ScenarioSpec, channel) -> bool:
    """Schedule the scenario's channel events on one session channel.

    Returns True if a handoff was scheduled (the caller logs it once)."""
    if spec.handoff_to is None:
        return False
    channel.schedule_handoff(spec.handoff_at_ms, spec.handoff_to)
    return True
