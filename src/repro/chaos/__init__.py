"""Adversarial scenario matrix + chaos injection for the serving stack.

``repro.chaos`` certifies the claim behind ``docs/serving.md``: under
adversarial scenes *and* injected infrastructure faults, the fleet
degrades (MAMT local fallback) and recovers (staggered keyframe
re-admission) while holding its SLO error budget.  The package has two
halves:

* :mod:`repro.chaos.scenarios` — a declarative registry of adversarial
  scene compositions (crowding, whip-pan feature starvation, frustum
  transit, lighting flips, WiFi->LTE handoffs);
* :mod:`repro.chaos.faults` — seeded, sim-clock-scheduled fault
  injectors for the serving stack (replica kill/revive, stragglers,
  channel partitions).

The ``chaos`` bench suite (``repro chaos`` / ``repro bench --suite
chaos``) runs the scenario x fault matrix and certifies every cell's
error-budget ``consumed_fraction < 1.0``.
"""

from .faults import FAULT_KINDS, FAULTS, ChaosInjector, FaultSpec, make_faults
from .scenarios import (
    SCENARIOS,
    LightingShiftTexture,
    ScenarioSpec,
    apply_network,
    build_video,
    make_scenario,
)

__all__ = [
    "FaultSpec",
    "FAULT_KINDS",
    "FAULTS",
    "make_faults",
    "ChaosInjector",
    "ScenarioSpec",
    "SCENARIOS",
    "make_scenario",
    "build_video",
    "apply_network",
    "LightingShiftTexture",
]
