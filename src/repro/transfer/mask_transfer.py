"""Motion Aware Mobile Mask Transfer (MAMT, paper Section III-C).

Given the VO state (device pose, per-object poses, labeled map) and the
cached keyframe segmentations, predict the instance masks of the current
frame without any DL inference:

1. **Source frame selection** — for each object visible now, pick the
   keyframe that has a mask for it, observes enough of its points and has
   the smallest viewing-angle difference from the current pose.
2. **Contour depth estimation** — extract the mask contour on the source
   frame (``findContours`` equivalent), and give each contour pixel the
   average depth of its k=5 nearest labeled features in that frame (the
   paper's small-neighbourhood depth-smoothness observation).
3. **Reprojection** — back-project contour pixels into the source camera,
   move them through the camera-from-object relative transform (which
   absorbs both device *and* object motion), project into the current
   frame and scan-fill the resulting contour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ..geometry.camera import PinholeCamera
from ..image.contours import fill_contour, largest_contour, resample_contour
from ..image.masks import InstanceMask
from ..vo.map import KeyframeRecord
from ..vo.odometry import VisualOdometry

__all__ = [
    "TransferConfig",
    "TransferredMask",
    "MaskTransferEngine",
    "contour_depths",
]

K_NEAREST_FEATURES = 5  # the paper's empirical k


def contour_depths(
    contour_uv: np.ndarray,
    feature_pixels: np.ndarray,
    depths: np.ndarray,
    k: int,
    tree: cKDTree | None = None,
) -> np.ndarray:
    """Mean depth of the k nearest labeled features per contour pixel.

    The paper's small-neighbourhood depth-smoothness estimate, vectorized
    as one batched cKDTree query.  Pass a prebuilt ``tree`` over
    ``feature_pixels`` to amortize construction across contours of the
    same source keyframe.
    """
    k = min(k, len(feature_pixels))
    if tree is None:
        tree = cKDTree(feature_pixels)
    _, neighbor_indices = tree.query(contour_uv, k=k)
    if k == 1:
        neighbor_indices = neighbor_indices[:, None]
    return depths[neighbor_indices].mean(axis=1)


def _contour_depths_reference(
    contour_uv: np.ndarray,
    feature_pixels: np.ndarray,
    depths: np.ndarray,
    k: int,
) -> np.ndarray:
    """Per-pixel scalar k-NN loop — reference for :func:`contour_depths`
    (equivalence tests; ``transfer.contour_depth`` micro cell).  Matches
    the vectorized path up to ties in neighbour distance at the k-th
    rank (measure-zero for float pixel coordinates)."""
    k = min(k, len(feature_pixels))
    out = np.empty(len(contour_uv))
    for index, point in enumerate(contour_uv):
        distances = np.linalg.norm(feature_pixels - point, axis=1)
        nearest = np.argsort(distances)[:k]
        out[index] = depths[nearest].mean()
    return out


@dataclass
class TransferConfig:
    """Tunables for mask transfer."""

    k_nearest: int = K_NEAREST_FEATURES
    max_contour_points: int = 192
    max_view_angle_deg: float = 45.0
    min_object_features: int = 3
    min_mask_area: int = 12


@dataclass
class TransferredMask:
    """A predicted instance mask with provenance."""

    mask: InstanceMask
    source_frame_index: int
    view_angle_deg: float


class MaskTransferEngine:
    """Computes current-frame masks from cached keyframe segmentations."""

    def __init__(self, camera: PinholeCamera, config: TransferConfig | None = None):
        self.camera = camera
        self.config = config or TransferConfig()
        # Derived-array caches keyed on LabeledMap.version: the object's
        # stacked positions per instance, and the projected features +
        # kd-tree per (source keyframe, instance).  A version bump (point
        # added/relabeled/culled/refined) invalidates lazily on lookup.
        self._positions_cache: dict[int, tuple[int, np.ndarray]] = {}
        self._source_cache: dict[
            tuple[int, int],
            tuple[int, tuple[np.ndarray, np.ndarray, cKDTree] | None],
        ] = {}

    # ------------------------------------------------------------------
    def predict(self, vo: VisualOdometry) -> list[TransferredMask]:
        """Predict masks for the VO's current frame."""
        if vo.pose_cw is None:
            return []
        predictions: list[TransferredMask] = []
        for instance_id, track in vo.objects.items():
            source = self._select_source(vo, instance_id)
            if source is None:
                continue
            record, view_angle = source
            transferred = self._transfer_one(vo, record, instance_id)
            if transferred is None:
                continue
            if transferred.sum() < self.config.min_mask_area:
                continue
            predictions.append(
                TransferredMask(
                    mask=InstanceMask(
                        instance_id=instance_id,
                        class_label=track.class_label,
                        mask=transferred,
                        score=1.0,
                    ),
                    source_frame_index=record.frame_index,
                    view_angle_deg=view_angle,
                )
            )
        return predictions

    # ------------------------------------------------------------------
    # Source frame selection (III-C, first problem)
    # ------------------------------------------------------------------
    def _select_source(
        self, vo: VisualOdometry, instance_id: int
    ) -> tuple[KeyframeRecord, float] | None:
        track = vo.objects[instance_id]
        current_pose_co = track.pose_co(vo.pose_cw)
        best: tuple[KeyframeRecord, float] | None = None
        for record in vo.map.keyframes_with_masks():
            mask = record.mask_for(instance_id)
            if mask is None or mask.is_empty:
                continue
            source_pose_co = record.object_poses_co.get(instance_id)
            if source_pose_co is None:
                continue
            angle = np.degrees(source_pose_co.rotation_angle_to(current_pose_co))
            if angle > self.config.max_view_angle_deg:
                continue
            # Among keyframes within the viewing-angle budget, prefer the
            # newest: pose estimates are only locally consistent (a lost /
            # relocalize episode shifts the frame of reference slightly),
            # so staleness costs more accuracy than a few extra degrees.
            if best is None or record.frame_index > best[0].frame_index:
                best = (record, angle)
        if best is None:
            return None
        return best

    # ------------------------------------------------------------------
    # Contour transfer (III-C, second problem)
    # ------------------------------------------------------------------
    def _positions_object(
        self, vo: VisualOdometry, instance_id: int
    ) -> np.ndarray:
        """Stacked (N, 3) object-frame positions, memoized per instance
        against the map version (the per-call ``np.array([p.position ...])``
        rebuild was a profiled hot spot)."""
        version = vo.map.version
        entry = self._positions_cache.get(instance_id)
        if entry is not None and entry[0] == version:
            return entry[1]
        points = [p for p in vo.map.points if p.label == instance_id]
        positions = (
            np.array([p.position for p in points])
            if points
            else np.zeros((0, 3))
        )
        self._positions_cache[instance_id] = (version, positions)
        return positions

    def _source_features(
        self,
        vo: VisualOdometry,
        record: KeyframeRecord,
        instance_id: int,
        source_pose_co,
    ) -> tuple[np.ndarray, np.ndarray, cKDTree] | None:
        """(feature_pixels, depths, kd-tree) of the object's points as
        seen from the source keyframe, memoized per (keyframe, instance)
        against the map version.  ``object_poses_co`` is fixed at
        keyframe creation, so the keyframe index is a stable key."""
        key = (record.frame_index, instance_id)
        version = vo.map.version
        entry = self._source_cache.get(key)
        if entry is not None and entry[0] == version:
            return entry[1]
        positions_object = self._positions_object(vo, instance_id)
        value: tuple[np.ndarray, np.ndarray, cKDTree] | None = None
        if len(positions_object) >= self.config.min_object_features:
            points_source_cam = source_pose_co.transform(positions_object)
            depths = points_source_cam[:, 2]
            in_front = depths > 1e-3
            if in_front.sum() >= self.config.min_object_features:
                depths = depths[in_front]
                feature_pixels, _ = self.camera.project(
                    points_source_cam[in_front]
                )
                value = (feature_pixels, depths, cKDTree(feature_pixels))
        if len(self._source_cache) >= 128:
            # Drop stale-version entries before growing further.
            self._source_cache = {
                k: v for k, v in self._source_cache.items() if v[0] == version
            }
        self._source_cache[key] = (version, value)
        return value

    def _transfer_one(
        self, vo: VisualOdometry, record: KeyframeRecord, instance_id: int
    ) -> np.ndarray | None:
        mask = record.mask_for(instance_id)
        assert mask is not None
        track = vo.objects[instance_id]
        source_pose_co = record.object_poses_co[instance_id]
        current_pose_co = track.pose_co(vo.pose_cw)
        # Relative motion in the object's frame absorbs object movement.
        relative = current_pose_co @ source_pose_co.inverse()

        # Depth sources: the object's map points as seen from the source
        # keyframe (positions are stored in the object frame).
        source = self._source_features(vo, record, instance_id, source_pose_co)
        if source is None:
            return None
        feature_pixels, depths, tree = source

        contour = largest_contour(mask.mask)
        if contour is None:
            return None
        contour = resample_contour(contour, self.config.max_contour_points)
        # Contour is (row, col); features are (u, v) = (col, row).
        contour_uv = contour[:, ::-1]

        estimated_depths = contour_depths(
            contour_uv, feature_pixels, depths, self.config.k_nearest, tree=tree
        )

        # Back-project, move, re-project.
        points_cam_source = self.camera.backproject(contour_uv, estimated_depths)
        points_cam_current = relative.transform(points_cam_source)
        projected, proj_depths = self.camera.project(points_cam_current)
        visible = proj_depths > 1e-3
        if visible.sum() < 3:
            return None
        projected = projected[visible]
        # fill_contour takes (row, col) points.
        new_mask = fill_contour(
            projected[:, ::-1], (self.camera.height, self.camera.width)
        )
        return new_mask
