"""Motion Aware Mobile Mask Transfer (MAMT) — paper Section III-C."""

from .mask_transfer import MaskTransferEngine, TransferConfig, TransferredMask

__all__ = ["MaskTransferEngine", "TransferConfig", "TransferredMask"]
