"""Wireless channel models (WiFi 2.4/5 GHz, LTE)."""

from .channel import (
    CHANNELS,
    Channel,
    ChannelProfile,
    make_channel,
    spawn_channel_rngs,
)

__all__ = [
    "CHANNELS",
    "Channel",
    "ChannelProfile",
    "make_channel",
    "spawn_channel_rngs",
]
