"""Wireless channel models.

The evaluation runs under WiFi 2.4 GHz, WiFi 5 GHz (Section VI-C2) and
LTE (the oil-field study, Section VI-G).  Each channel is a stochastic
model of effective application-layer throughput and round-trip time, with
log-normal jitter and occasional loss-retransmission stalls — enough to
reproduce how transmission latency separates the systems without modeling
radio internals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ChannelProfile",
    "Channel",
    "CHANNELS",
    "make_channel",
    "spawn_channel_rngs",
]


@dataclass(frozen=True)
class ChannelProfile:
    """Effective (application-layer) link parameters."""

    name: str
    uplink_mbps: float
    downlink_mbps: float
    rtt_ms: float
    jitter: float  # sigma of the log-normal latency multiplier
    loss_rate: float  # probability a transfer needs a retransmission stall


CHANNELS: dict[str, ChannelProfile] = {
    # Effective throughputs, not PHY rates: a busy 2.4 GHz channel
    # delivers a few tens of Mbps; 5 GHz over 100; LTE uplink ~10.
    "wifi_5ghz": ChannelProfile("wifi_5ghz", 120.0, 160.0, 5.0, 0.18, 0.005),
    "wifi_2.4ghz": ChannelProfile("wifi_2.4ghz", 16.0, 22.0, 12.0, 0.32, 0.025),
    "lte": ChannelProfile("lte", 11.0, 28.0, 45.0, 0.35, 0.03),
}


class Channel:
    """A bidirectional link with stochastic latency draws."""

    def __init__(self, profile: ChannelProfile, rng: np.random.Generator | None = None):
        self.profile = profile
        self._rng = rng or np.random.default_rng(0)
        self.bytes_up = 0
        self.bytes_down = 0

    def _transfer_ms(self, num_bytes: int, mbps: float) -> float:
        serialization = num_bytes * 8.0 / (mbps * 1e6) * 1000.0
        multiplier = float(
            np.exp(self._rng.normal(0.0, self.profile.jitter))
        )
        latency = self.profile.rtt_ms / 2.0 + serialization * multiplier
        if self._rng.uniform() < self.profile.loss_rate:
            # A loss event stalls for roughly one RTO (~2 RTT here).
            latency += 2.0 * self.profile.rtt_ms
        return latency

    def uplink_ms(self, num_bytes: int) -> float:
        """Latency to move ``num_bytes`` from mobile to edge."""
        self.bytes_up += int(num_bytes)
        return self._transfer_ms(num_bytes, self.profile.uplink_mbps)

    def downlink_ms(self, num_bytes: int) -> float:
        """Latency to move ``num_bytes`` from edge to mobile."""
        self.bytes_down += int(num_bytes)
        return self._transfer_ms(num_bytes, self.profile.downlink_mbps)


def make_channel(name: str, rng: np.random.Generator | None = None) -> Channel:
    profile = CHANNELS.get(name)
    if profile is None:
        raise ValueError(f"unknown channel {name!r}; pick from {sorted(CHANNELS)}")
    return Channel(profile, rng)


def spawn_channel_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent channel RNG streams from one seed.

    Multi-session experiments must not hand every :class:`Channel` the
    default ``default_rng(0)`` stream (identical jitter draws across
    devices would correlate the fleet's latency spikes), nor ad-hoc
    ``seed + i`` offsets that can collide with other consumers of the
    experiment seed.  ``SeedSequence.spawn`` gives statistically
    independent, deterministic child streams.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [
        np.random.default_rng(child)
        for child in np.random.SeedSequence(seed).spawn(count)
    ]
