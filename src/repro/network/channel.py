"""Wireless channel models.

The evaluation runs under WiFi 2.4 GHz, WiFi 5 GHz (Section VI-C2) and
LTE (the oil-field study, Section VI-G).  Each channel is a stochastic
model of effective application-layer throughput and round-trip time, with
log-normal jitter and occasional loss-retransmission stalls — enough to
reproduce how transmission latency separates the systems without modeling
radio internals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ChannelProfile",
    "Channel",
    "CHANNELS",
    "make_channel",
    "spawn_channel_rngs",
]


@dataclass(frozen=True)
class ChannelProfile:
    """Effective (application-layer) link parameters."""

    name: str
    uplink_mbps: float
    downlink_mbps: float
    rtt_ms: float
    jitter: float  # sigma of the log-normal latency multiplier
    loss_rate: float  # probability a transfer needs a retransmission stall


CHANNELS: dict[str, ChannelProfile] = {
    # Effective throughputs, not PHY rates: a busy 2.4 GHz channel
    # delivers a few tens of Mbps; 5 GHz over 100; LTE uplink ~10.
    "wifi_5ghz": ChannelProfile("wifi_5ghz", 120.0, 160.0, 5.0, 0.18, 0.005),
    "wifi_2.4ghz": ChannelProfile("wifi_2.4ghz", 16.0, 22.0, 12.0, 0.32, 0.025),
    "lte": ChannelProfile("lte", 11.0, 28.0, 45.0, 0.35, 0.03),
}


class Channel:
    """A bidirectional link with stochastic latency draws.

    The link can change character mid-session: :meth:`schedule_handoff`
    swaps the active :class:`ChannelProfile` at a simulated instant (the
    WiFi -> LTE handoff of the chaos scenarios), and
    :meth:`schedule_stall` opens a partition window during which every
    transfer is held until the window closes.  Both are pure schedule
    lookups — they add **no RNG draws** — so a run with a handoff at
    ``t`` is bit-identical to the unmodified run for every transfer
    initiated before ``t``.  Callers opt in by passing ``now_ms``; the
    legacy no-argument form keeps the base profile forever.
    """

    def __init__(self, profile: ChannelProfile, rng: np.random.Generator | None = None):
        self.profile = profile
        self._rng = rng or np.random.default_rng(0)
        self.bytes_up = 0
        self.bytes_down = 0
        # Time-scheduled link changes (empty = legacy static behavior).
        self._handoffs: list[tuple[float, ChannelProfile]] = []
        self._stalls: list[tuple[float, float]] = []
        self._active_name = profile.name
        self.handoff_count = 0
        self.stall_hits = 0
        # Metadata of the most recent transfer, for span annotation:
        # which link carried it and how long a partition window held it.
        # Pure bookkeeping — reading or ignoring it never changes a draw.
        self.last_link = profile.name
        self.last_stall_ms = 0.0

    # ------------------------------------------------------------------
    # Chaos / scenario schedule
    # ------------------------------------------------------------------
    def schedule_handoff(self, at_ms: float, profile: ChannelProfile | str) -> None:
        """Swap the active profile for transfers initiated at/after ``at_ms``."""
        if isinstance(profile, str):
            resolved = CHANNELS.get(profile)
            if resolved is None:
                raise ValueError(
                    f"unknown channel {profile!r}; pick from {sorted(CHANNELS)}"
                )
            profile = resolved
        self._handoffs.append((float(at_ms), profile))
        self._handoffs.sort(key=lambda entry: entry[0])

    def schedule_stall(self, at_ms: float, duration_ms: float) -> None:
        """Partition the link for ``[at_ms, at_ms + duration_ms)``: a
        transfer initiated inside the window is held until it closes."""
        if duration_ms <= 0.0:
            raise ValueError("stall duration_ms must be positive")
        self._stalls.append((float(at_ms), float(at_ms) + float(duration_ms)))
        self._stalls.sort()

    def profile_at(self, now_ms: float | None) -> ChannelProfile:
        """The profile governing a transfer initiated at ``now_ms``."""
        if now_ms is None or not self._handoffs:
            return self.profile
        active = self.profile
        for at_ms, profile in self._handoffs:
            if now_ms >= at_ms:
                active = profile
            else:
                break
        return active

    def _stall_release(self, now_ms: float | None) -> float | None:
        if now_ms is None:
            return None
        for start, end in self._stalls:
            if start <= now_ms < end:
                return end
        return None

    # ------------------------------------------------------------------
    def _transfer_ms(
        self, num_bytes: int, mbps: float, profile: ChannelProfile, now_ms: float | None
    ) -> float:
        serialization = num_bytes * 8.0 / (mbps * 1e6) * 1000.0
        multiplier = float(
            np.exp(self._rng.normal(0.0, profile.jitter))
        )
        latency = profile.rtt_ms / 2.0 + serialization * multiplier
        if self._rng.uniform() < profile.loss_rate:
            # A loss event stalls for roughly one RTO (~2 RTT here).
            latency += 2.0 * profile.rtt_ms
        release = self._stall_release(now_ms)
        self.last_stall_ms = 0.0
        if release is not None:
            # Partitioned: the transfer only starts once the window ends.
            self.stall_hits += 1
            self.last_stall_ms = release - now_ms
            latency += release - now_ms
        return latency

    def _note_profile(self, profile: ChannelProfile) -> None:
        self.last_link = profile.name
        if profile.name != self._active_name:
            self._active_name = profile.name
            self.handoff_count += 1

    def uplink_ms(self, num_bytes: int, now_ms: float | None = None) -> float:
        """Latency to move ``num_bytes`` from mobile to edge."""
        self.bytes_up += int(num_bytes)
        profile = self.profile_at(now_ms)
        self._note_profile(profile)
        return self._transfer_ms(num_bytes, profile.uplink_mbps, profile, now_ms)

    def downlink_ms(self, num_bytes: int, now_ms: float | None = None) -> float:
        """Latency to move ``num_bytes`` from edge to mobile."""
        self.bytes_down += int(num_bytes)
        profile = self.profile_at(now_ms)
        self._note_profile(profile)
        return self._transfer_ms(num_bytes, profile.downlink_mbps, profile, now_ms)


def make_channel(name: str, rng: np.random.Generator | None = None) -> Channel:
    profile = CHANNELS.get(name)
    if profile is None:
        raise ValueError(f"unknown channel {name!r}; pick from {sorted(CHANNELS)}")
    return Channel(profile, rng)


def spawn_channel_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent channel RNG streams from one seed.

    Multi-session experiments must not hand every :class:`Channel` the
    default ``default_rng(0)`` stream (identical jitter draws across
    devices would correlate the fleet's latency spikes), nor ad-hoc
    ``seed + i`` offsets that can collide with other consumers of the
    experiment seed.  ``SeedSequence.spawn`` gives statistically
    independent, deterministic child streams.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [
        np.random.default_rng(child)
        for child in np.random.SeedSequence(seed).spawn(count)
    ]
