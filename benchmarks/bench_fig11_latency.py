"""Fig. 11 — mobile-side latency and accuracy under WiFi 5 GHz.

Paper numbers: average IoU edgeIS 0.89 / EAAR 0.83 / EdgeDuet 0.78;
average per-frame latency edgeIS 28 ms / EAAR 41 ms / EdgeDuet 49 ms —
and the paper's point that latency above the 33 ms frame budget
accumulates into delayed (hence less accurate) rendering.
"""

from __future__ import annotations

import numpy as np

from repro.eval import ExperimentSpec, Table, run_experiment

SYSTEMS = ("edgeis", "eaar", "edgeduet")
DATASETS = ("davis_like", "xiph_like", "oilfield")


def run_fig11(
    num_frames: int = 150,
    datasets: tuple[str, ...] = DATASETS,
    seed: int = 0,
    quiet: bool = False,
) -> dict:
    summary: dict[str, dict[str, float]] = {}
    for system in SYSTEMS:
        ious, latencies = [], []
        for dataset in datasets:
            spec = ExperimentSpec(
                system=system,
                dataset=dataset,
                network="wifi_5ghz",
                num_frames=num_frames,
                seed=seed,
            )
            result = run_experiment(spec).result
            ious.append(result.per_object_ious())
            latencies.append(result.mean_latency_ms())
        all_ious = np.concatenate(ious)
        summary[system] = {
            "mean_iou": float(all_ious.mean()),
            "mean_latency_ms": float(np.mean(latencies)),
        }

    if not quiet:
        paper = {"edgeis": (0.89, 28), "eaar": (0.83, 41), "edgeduet": (0.78, 49)}
        table = Table(
            "Fig. 11 — mobile-side latency & accuracy (WiFi 5 GHz)",
            ["system", "mean IoU", "latency ms", "paper IoU", "paper latency"],
        )
        for system in SYSTEMS:
            table.add_row(
                system,
                summary[system]["mean_iou"],
                summary[system]["mean_latency_ms"],
                paper[system][0],
                paper[system][1],
            )
        table.print()
    return summary


def bench_fig11_latency(benchmark):
    summary = benchmark.pedantic(
        run_fig11,
        kwargs={"num_frames": 120, "datasets": ("xiph_like",), "quiet": True},
        rounds=1,
        iterations=1,
    )
    # Ordering of both metrics matches the paper.
    assert (
        summary["edgeis"]["mean_latency_ms"]
        < summary["eaar"]["mean_latency_ms"]
        < summary["edgeduet"]["mean_latency_ms"]
    )
    assert summary["edgeis"]["mean_iou"] > summary["eaar"]["mean_iou"]
    assert summary["edgeis"]["mean_iou"] > summary["edgeduet"]["mean_iou"]
    # edgeIS meets the 33 ms frame budget on average.
    assert summary["edgeis"]["mean_latency_ms"] < 33.0


if __name__ == "__main__":
    run_fig11()
