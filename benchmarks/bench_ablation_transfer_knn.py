"""Design-choice ablation: the k in MAMT's k-nearest-feature contour depth.

The paper fixes k = 5 "based on our observation that the actual positions
in 3-D space corresponding to a small neighbourhood of the object mask are
not likely to experience shape changes in depth".  This sweep validates
that claim directly: across k in [1, 15] the transfer IoU is nearly flat
(local depth really is smooth on these objects), with a mild decline at
large k where depth from the far side of the object starts leaking into
the contour.
"""

from __future__ import annotations

import numpy as np

from repro.eval import Table
from repro.image import mask_iou
from repro.synthetic import make_dataset
from repro.transfer import MaskTransferEngine, TransferConfig
from repro.vo import OracleFrontend, VisualOdometry

K_VALUES = (1, 3, 5, 9, 15)


def _run_mamt(k: int, num_frames: int, seed: int) -> float:
    video = make_dataset("oilfield", num_frames=num_frames, seed=seed)
    frontend = OracleFrontend(video.world, video.camera, seed=seed + 1)
    vo = VisualOdometry(video.camera)
    engine = MaskTransferEngine(video.camera, TransferConfig(k_nearest=k))
    pending: dict[int, tuple[int, list]] = {}
    ious: list[float] = []
    for frame, truth in video:
        observation = frontend.observe(frame, truth)
        result = vo.process_frame(frame.index, frame.timestamp, observation)
        for keyframe, (due, masks) in list(pending.items()):
            if frame.index >= due:
                vo.apply_segmentation(keyframe, masks)
                del pending[keyframe]
        if result.is_tracking and frame.index % 12 == 0:
            vo.promote_keyframe(frame.index)
            pending[frame.index] = (frame.index + 5, truth.masks)
        if result.is_tracking:
            for prediction in engine.predict(vo):
                gt = truth.mask_for(prediction.mask.instance_id)
                if gt is not None and gt.area >= 120:
                    ious.append(mask_iou(prediction.mask.mask, gt.mask))
    return float(np.mean(ious)) if ious else 0.0


def run_knn_ablation(num_frames: int = 120, seed: int = 0, quiet: bool = False) -> dict:
    summary = {k: _run_mamt(k, num_frames, seed) for k in K_VALUES}
    if not quiet:
        table = Table(
            "Ablation — k-nearest features for contour depth (MAMT)",
            ["k", "transfer mean IoU"],
        )
        for k, iou in summary.items():
            marker = "  <- paper's choice" if k == 5 else ""
            table.add_row(f"{k}{marker}", iou)
        table.print()
    return summary


def bench_ablation_transfer_knn(benchmark):
    summary = benchmark.pedantic(
        run_knn_ablation,
        kwargs={"num_frames": 90, "quiet": True},
        rounds=1,
        iterations=1,
    )
    # k = 5 should be at (or within noise of) the sweet spot.
    best = max(summary.values())
    assert summary[5] >= best - 0.05
    assert summary[5] > 0.7


if __name__ == "__main__":
    run_knn_ablation()
