"""Fig. 16 — accuracy benefit of each module, under both WiFi networks.

The baseline is the best-effort strategy with motion-vector tracking (all
three modules disabled); each variant enables exactly one module.  Paper
numbers (accuracy improvement over the baseline): CFRS +3-7%, CIIA
+12-14%, MAMT >19%; full edgeIS +27% under all network conditions.
"""

from __future__ import annotations

import numpy as np

from repro.eval import ABLATION_NAMES, ExperimentSpec, Table, run_experiment

NETWORKS = ("wifi_2.4ghz", "wifi_5ghz")


def run_fig16(
    num_frames: int = 240,
    datasets: tuple[str, ...] = ("davis_like", "xiph_like"),
    seed: int = 0,
    quiet: bool = False,
) -> dict:
    # Steady-state measurement: the uncontrolled baseline queue needs a
    # couple of seconds to reach its stationary staleness.
    warmup = max(75, num_frames // 4)
    summary: dict[str, dict[str, float]] = {}
    for variant in ABLATION_NAMES:
        summary[variant] = {}
        for network in NETWORKS:
            ious = []
            for dataset in datasets:
                spec = ExperimentSpec(
                    system=variant,
                    dataset=dataset,
                    network=network,
                    num_frames=num_frames,
                    warmup_frames=warmup,
                    seed=seed,
                )
                ious.append(run_experiment(spec).result.per_object_ious())
            summary[variant][network] = float(np.concatenate(ious).mean())

    if not quiet:
        table = Table(
            "Fig. 16 — module ablation (mean IoU and gain over baseline)",
            ["variant", "2.4 GHz IoU", "gain", "5 GHz IoU", "gain"],
        )
        for variant in ABLATION_NAMES:
            row = summary[variant]
            gains = [
                (row[n] - summary["baseline"][n]) / max(summary["baseline"][n], 1e-9)
                for n in NETWORKS
            ]
            table.add_row(
                variant,
                row["wifi_2.4ghz"],
                f"{gains[0]:+.0%}",
                row["wifi_5ghz"],
                f"{gains[1]:+.0%}",
            )
        table.print()
        print("paper gains: CFRS +3-7%, CIIA +12-14%, MAMT >19%, edgeIS +27%\n")
    return summary


def bench_fig16_ablation(benchmark):
    summary = benchmark.pedantic(
        run_fig16,
        kwargs={"num_frames": 180, "datasets": ("xiph_like",), "quiet": True},
        rounds=1,
        iterations=1,
    )
    for network in NETWORKS:
        base = summary["baseline"][network]
        # Every module helps; MAMT helps most; the full system tops all.
        assert summary["baseline+mamt"][network] > base
        assert summary["baseline+ciia"][network] >= base - 0.02
        assert summary["edgeis"][network] >= summary["baseline+mamt"][network] - 0.03
        assert summary["edgeis"][network] > base


if __name__ == "__main__":
    run_fig16()
