"""Design-choice ablation: CFRS's new-content threshold t.

The paper sets t = 0.25: "if the proportion of the features matched with
unlabeled points is larger than a threshold t, edgeIS will take it as that
a large area of the frame is new".  Lower t offloads more (bandwidth,
server load) for marginal accuracy; higher t reacts too late to new
content.
"""

from __future__ import annotations

import numpy as np

from repro.core import SystemConfig
from repro.encoding import CFRSConfig
from repro.eval import ExperimentSpec, Table
from repro.eval.experiments import _make_video
from repro.model import SimulatedSegmentationModel
from repro.network import make_channel
from repro.runtime import EdgeServer, Pipeline

THRESHOLDS = (0.05, 0.15, 0.25, 0.5, 0.8)


def _run_with_threshold(threshold: float, num_frames: int, seed: int):
    from repro.core.system import EdgeISSystem

    spec = ExperimentSpec(system="edgeis", dataset="kitti_like", num_frames=num_frames, seed=seed)
    video = _make_video(spec)
    config = SystemConfig(seed=seed, cfrs=CFRSConfig(unlabeled_threshold=threshold))
    client = EdgeISSystem(
        video.camera,
        (video.camera.height, video.camera.width),
        config=config,
        world=video.world,
    )
    channel = make_channel("wifi_5ghz", np.random.default_rng(seed + 17))
    server = EdgeServer(
        SimulatedSegmentationModel("mask_rcnn_r101", "jetson_tx2", np.random.default_rng(seed + 29))
    )
    return Pipeline(video, client, channel, server).run()


def run_cfrs_ablation(num_frames: int = 150, seed: int = 0, quiet: bool = False) -> dict:
    summary: dict[float, dict[str, float]] = {}
    for threshold in THRESHOLDS:
        result = _run_with_threshold(threshold, num_frames, seed)
        summary[threshold] = {
            "mean_iou": result.mean_iou(),
            "false_rate_75": result.false_rate(0.75),
            "offloads": result.offload_count,
            "uplink_kb": result.bytes_up / 1024,
        }
    if not quiet:
        table = Table(
            "Ablation — CFRS new-content threshold t (kitti_like, WiFi 5 GHz)",
            ["t", "mean IoU", "false@0.75", "offloads", "uplink kB"],
        )
        for threshold, row in summary.items():
            marker = "  <- paper" if threshold == 0.25 else ""
            table.add_row(
                f"{threshold}{marker}",
                row["mean_iou"],
                row["false_rate_75"],
                row["offloads"],
                row["uplink_kb"],
            )
        table.print()
    return summary


def bench_ablation_cfrs_threshold(benchmark):
    summary = benchmark.pedantic(
        run_cfrs_ablation,
        kwargs={"num_frames": 110, "quiet": True},
        rounds=1,
        iterations=1,
    )
    # More sensitive thresholds offload at least as often.
    assert summary[0.05]["offloads"] >= summary[0.8]["offloads"]
    # The paper's operating point stays accurate.
    assert summary[0.25]["mean_iou"] > 0.7


if __name__ == "__main__":
    run_cfrs_ablation()
