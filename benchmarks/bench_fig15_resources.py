"""Fig. 15 — mobile resource usage over time.

Paper observations on an iPhone 11: CPU utilization around 75%; memory
grows ~2 MB/s from new frames and local-map data, and the clearing
algorithm keeps the total under 1 GB.
"""

from __future__ import annotations

import numpy as np

from repro.eval import ExperimentSpec, Table, run_experiment


def run_fig15(num_frames: int = 360, seed: int = 0, quiet: bool = False) -> dict:
    spec = ExperimentSpec(
        system="edgeis",
        dataset="xiph_like",
        network="wifi_5ghz",
        num_frames=num_frames,
        seed=seed,
        monitor_resources=True,
        power_device="iphone_11",
    )
    outcome = run_experiment(spec)
    trace = outcome.resources.trace
    memory = trace.memory_mb_series()

    summary = {
        "cpu_percent_mean": trace.cpu_percent_mean(),
        "memory_growth_mb_per_s": trace.memory_growth_mb_per_s(),
        "memory_peak_mb": float(memory.max()) if len(memory) else 0.0,
        "memory_final_mb": float(memory[-1]) if len(memory) else 0.0,
    }

    if not quiet:
        table = Table(
            "Fig. 15 — mobile resource usage (edgeIS on iPhone-11-class device)",
            ["metric", "measured", "paper"],
        )
        table.add_row("CPU utilization %", summary["cpu_percent_mean"], "~75")
        table.add_row(
            "memory growth MB/s", summary["memory_growth_mb_per_s"], "~2 (pre-culling)"
        )
        table.add_row("peak memory MB", summary["memory_peak_mb"], "< 1024")
        table.print()

        series = Table("memory over time", ["t (s)", "memory MB", "cpu %"])
        step = max(len(trace.times_s) // 10, 1)
        for i in range(0, len(trace.times_s), step):
            series.add_row(
                round(trace.times_s[i], 1),
                float(memory[i]),
                100 * trace.cpu_fraction[i],
            )
        series.print()
    return summary


def bench_fig15_resources(benchmark):
    summary = benchmark.pedantic(
        run_fig15, kwargs={"num_frames": 180, "quiet": True}, rounds=1, iterations=1
    )
    # CPU loaded but not saturated; memory bounded well under 1 GB.
    assert 20 < summary["cpu_percent_mean"] < 100
    assert summary["memory_peak_mb"] < 1024
    # The map grows while the sequence explores new content.
    assert summary["memory_growth_mb_per_s"] >= 0.0


if __name__ == "__main__":
    run_fig15()
