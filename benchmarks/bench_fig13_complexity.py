"""Fig. 13 — robustness to scene complexity.

Easy scenes hold <= 3 objects, medium ~10, hard scenes add objects that
move during the run.  Paper numbers: mean IoU 0.91 / 0.88 / 0.83 and a
19.7% false rate in the hard (dynamic) scenes.
"""

from __future__ import annotations

import numpy as np

from repro.eval import ExperimentSpec, Table, run_experiment

LEVELS = ("easy", "medium", "hard")


def run_fig13(num_frames: int = 150, seed: int = 0, quiet: bool = False) -> dict:
    summary: dict[str, dict[str, float]] = {}
    for level in LEVELS:
        spec = ExperimentSpec(
            system="edgeis",
            complexity=level,
            network="wifi_5ghz",
            num_frames=num_frames,
            seed=seed,
        )
        result = run_experiment(spec).result
        ious = result.per_object_ious()
        summary[level] = {
            "mean_iou": float(ious.mean()) if len(ious) else 0.0,
            "false_rate_75": float((ious < 0.75).mean()) if len(ious) else 1.0,
        }

    if not quiet:
        paper = {"easy": 0.91, "medium": 0.88, "hard": 0.83}
        table = Table(
            "Fig. 13 — robustness to scene complexity (edgeIS)",
            ["level", "mean IoU", "false@0.75", "paper IoU"],
        )
        for level in LEVELS:
            table.add_row(
                level,
                summary[level]["mean_iou"],
                summary[level]["false_rate_75"],
                paper[level],
            )
        table.print()
    return summary


def bench_fig13_complexity(benchmark):
    summary = benchmark.pedantic(
        run_fig13, kwargs={"num_frames": 120, "quiet": True}, rounds=1, iterations=1
    )
    # Accuracy decreases with complexity but stays usable in hard scenes.
    assert summary["easy"]["mean_iou"] >= summary["hard"]["mean_iou"] - 0.02
    assert summary["hard"]["mean_iou"] > 0.6
    assert summary["easy"]["false_rate_75"] <= summary["hard"]["false_rate_75"] + 0.02


if __name__ == "__main__":
    run_fig13()
