"""Fig. 14 — latency benefit of the model acceleration (CIIA).

Paper numbers: dynamic anchor placement cuts RPN-stage latency by 46% and
inference latency by 21% (fewer RoIs produced); RoI pruning cuts inference
latency by 43%; together the module halves total latency (-48%) while the
accuracy stays above 0.92 IoU.
"""

from __future__ import annotations

import numpy as np

from repro.eval import Table
from repro.image import mask_iou
from repro.model import SimulatedSegmentationModel, instructions_from_masks
from repro.synthetic import make_dataset

VARIANTS = (
    ("full model", False, False),
    ("+ dynamic anchors", True, False),
    ("+ RoI pruning", False, True),
    ("+ both (CIIA)", True, True),
)


def run_fig14(num_frames: int = 25, seed: int = 0, quiet: bool = False) -> dict:
    video = make_dataset("xiph_like", num_frames=num_frames, seed=seed)
    model = SimulatedSegmentationModel(
        "mask_rcnn_r101", "jetson_tx2", np.random.default_rng(seed)
    )
    accumulators = {
        name: {"rpn": [], "inference": [], "total": [], "iou": [], "rois": []}
        for name, _, _ in VARIANTS
    }
    for frame, truth in video:
        instructions = instructions_from_masks(truth.masks)
        for name, use_dap, use_prune in VARIANTS:
            result = model.infer(
                truth.masks,
                frame.shape,
                instructions=instructions if (use_dap or use_prune) else None,
                use_dynamic_anchors=use_dap,
                use_roi_pruning=use_prune,
            )
            bucket = accumulators[name]
            bucket["rpn"].append(result.rpn_ms)
            bucket["inference"].append(result.inference_ms)
            bucket["total"].append(result.total_ms)
            bucket["rois"].append(result.num_rois)
            truth_by_id = {m.instance_id: m for m in truth.masks}
            for detection in result.masks:
                gt = truth_by_id.get(detection.instance_id)
                if gt is not None:
                    bucket["iou"].append(mask_iou(detection.mask, gt.mask))

    summary = {
        name: {key: float(np.mean(values)) for key, values in bucket.items()}
        for name, bucket in accumulators.items()
    }
    base = summary["full model"]

    if not quiet:
        table = Table(
            "Fig. 14 — CIIA latency decomposition (TX2)",
            ["variant", "RPN ms", "infer ms", "total ms", "RPN cut", "infer cut", "total cut", "IoU"],
        )
        for name, _, _ in VARIANTS:
            row = summary[name]
            table.add_row(
                name,
                row["rpn"],
                row["inference"],
                row["total"],
                f"{1 - row['rpn'] / base['rpn']:.0%}",
                f"{1 - row['inference'] / base['inference']:.0%}",
                f"{1 - row['total'] / base['total']:.0%}",
                row["iou"],
            )
        table.print()
        print(
            "paper: DAP -46% RPN / -21% inference; pruning -43% inference; "
            "both -48% total at >= 0.92 IoU\n"
        )
    return summary


def bench_fig14_acceleration(benchmark):
    summary = benchmark.pedantic(
        run_fig14, kwargs={"num_frames": 10, "quiet": True}, rounds=1, iterations=1
    )
    base = summary["full model"]
    dap = summary["+ dynamic anchors"]
    prune = summary["+ RoI pruning"]
    both = summary["+ both (CIIA)"]
    # DAP cuts the RPN stage substantially; pruning leaves it untouched.
    assert 0.25 < 1 - dap["rpn"] / base["rpn"] < 0.75
    assert abs(prune["rpn"] - base["rpn"]) / base["rpn"] < 0.05
    # Pruning cuts inference latency substantially.
    assert 0.25 < 1 - prune["inference"] / base["inference"] < 0.80
    # Together: roughly half the total latency, accuracy preserved.
    assert 0.35 < 1 - both["total"] / base["total"] < 0.75
    assert both["iou"] > 0.85


if __name__ == "__main__":
    run_fig14()
