"""Design-choice ablation: offload refresh budget vs accuracy.

CFRS's fallback refresh interval bounds how stale a cached mask can get
when nothing triggers an offload.  This sweep shows the trade-off between
edge/server load (offload count, bytes) and accuracy, and that the
default (20 frames) sits on the knee of the curve.
"""

from __future__ import annotations

import numpy as np

from repro.core import SystemConfig
from repro.core.system import EdgeISSystem
from repro.encoding import CFRSConfig
from repro.eval import ExperimentSpec, Table
from repro.eval.experiments import _make_video
from repro.model import SimulatedSegmentationModel
from repro.network import make_channel
from repro.runtime import EdgeServer, Pipeline

INTERVALS = (10, 20, 40, 80)


def run_offload_ablation(num_frames: int = 180, seed: int = 0, quiet: bool = False) -> dict:
    summary: dict[int, dict[str, float]] = {}
    for interval in INTERVALS:
        spec = ExperimentSpec(
            system="edgeis", dataset="davis_like", num_frames=num_frames, seed=seed
        )
        video = _make_video(spec)
        config = SystemConfig(
            seed=seed, cfrs=CFRSConfig(max_interval_frames=interval)
        )
        client = EdgeISSystem(
            video.camera,
            (video.camera.height, video.camera.width),
            config=config,
            world=video.world,
        )
        channel = make_channel("wifi_5ghz", np.random.default_rng(seed + 17))
        server = EdgeServer(
            SimulatedSegmentationModel(
                "mask_rcnn_r101", "jetson_tx2", np.random.default_rng(seed + 29)
            )
        )
        result = Pipeline(video, client, channel, server).run()
        summary[interval] = {
            "mean_iou": result.mean_iou(),
            "offloads": result.offload_count,
            "server_util": result.server_utilization(),
        }
    if not quiet:
        table = Table(
            "Ablation — CFRS fallback refresh interval (davis_like)",
            ["interval (frames)", "mean IoU", "offloads", "server util"],
        )
        for interval, row in summary.items():
            marker = "  <- default" if interval == 20 else ""
            table.add_row(
                f"{interval}{marker}", row["mean_iou"], row["offloads"], row["server_util"]
            )
        table.print()
    return summary


def bench_ablation_offload_budget(benchmark):
    summary = benchmark.pedantic(
        run_offload_ablation,
        kwargs={"num_frames": 130, "quiet": True},
        rounds=1,
        iterations=1,
    )
    # More frequent refresh costs more offloads ...
    assert summary[10]["offloads"] >= summary[80]["offloads"]
    # ... and accuracy does not collapse at the default.
    assert summary[20]["mean_iou"] > 0.75


if __name__ == "__main__":
    run_offload_ablation()
