"""Fig. 2b — the motivation study: accuracy/latency trade-off of YOLOv3,
YOLACT and Mask R-CNN on an edge-class device.

Paper numbers: YOLOv3 > 0.98 (box) IoU at < 30 ms; YOLACT 0.75 IoU at
~120 ms; Mask R-CNN 0.92 IoU at ~400 ms.
"""

from __future__ import annotations

import numpy as np

from repro.eval import Table
from repro.image import box_iou, mask_iou
from repro.model import PROFILES, SimulatedSegmentationModel
from repro.synthetic import make_dataset


def run_fig2(num_frames: int = 20, seed: int = 0, quiet: bool = False) -> dict:
    video = make_dataset("xiph_like", num_frames=num_frames, seed=seed)
    results: dict[str, dict] = {}
    for profile_name in ("yolov3", "yolact_r50", "mask_rcnn_r101"):
        model = SimulatedSegmentationModel(
            profile_name, "jetson_tx2", np.random.default_rng(seed)
        )
        ious: list[float] = []
        latencies: list[float] = []
        for frame, truth in video:
            inference = model.infer(truth.masks, frame.shape)
            latencies.append(inference.total_ms)
            truth_by_id = {m.instance_id: m for m in truth.masks}
            for detection in inference.masks:
                gt = truth_by_id.get(detection.instance_id)
                if gt is None:
                    continue
                if PROFILES[profile_name].boxes_only:
                    # A detector is judged on boxes, as in the paper.
                    if detection.box and gt.box:
                        ious.append(box_iou(detection.box, gt.box))
                else:
                    ious.append(mask_iou(detection.mask, gt.mask))
        results[profile_name] = {
            "mean_iou": float(np.mean(ious)) if ious else 0.0,
            "mean_latency_ms": float(np.mean(latencies)),
        }

    if not quiet:
        table = Table(
            "Fig. 2b — model accuracy vs latency (TX2-class edge)",
            ["model", "IoU", "latency ms", "paper IoU", "paper latency"],
        )
        paper = {
            "yolov3": (0.98, "<30"),
            "yolact_r50": (0.75, "~120"),
            "mask_rcnn_r101": (0.92, "~400"),
        }
        for name, row in results.items():
            table.add_row(
                name, row["mean_iou"], row["mean_latency_ms"], paper[name][0], paper[name][1]
            )
        table.print()
    return results


def bench_fig2_model_tradeoff(benchmark):
    results = benchmark.pedantic(
        run_fig2, kwargs={"num_frames": 8, "quiet": True}, rounds=1, iterations=1
    )
    # Shape: the detector is near-perfect and fast; YOLACT trades accuracy
    # for speed; Mask R-CNN is accurate but slow.
    assert results["yolov3"]["mean_latency_ms"] < 50
    assert results["yolact_r50"]["mean_iou"] < results["mask_rcnn_r101"]["mean_iou"]
    assert (
        results["yolact_r50"]["mean_latency_ms"]
        < results["mask_rcnn_r101"]["mean_latency_ms"]
    )
    assert results["mask_rcnn_r101"]["mean_latency_ms"] > 300


if __name__ == "__main__":
    run_fig2()
