"""Substrate qualification — VO trajectory quality (ATE / RPE).

Not a paper figure: this bench certifies the tracking substrate that all
of Section III rests on, using the standard SLAM metrics (Sim(3)-aligned
absolute trajectory error; per-frame relative pose error).
"""

from __future__ import annotations

import numpy as np

from repro.eval import Table, evaluate_trajectory
from repro.synthetic import make_dataset
from repro.vo import OracleFrontend, VisualOdometry

DATASETS = ("davis_like", "xiph_like", "oilfield")


def _run(dataset: str, num_frames: int, seed: int):
    video = make_dataset(dataset, num_frames=num_frames)
    frontend = OracleFrontend(video.world, video.camera, seed=seed)
    vo = VisualOdometry(video.camera)
    estimated, truth = [], []
    for frame, gt in video:
        observation = frontend.observe(frame, gt)
        result = vo.process_frame(frame.index, frame.timestamp, observation)
        estimated.append(result.pose_cw if result.is_tracking else None)
        truth.append(gt.pose_cw)
    return evaluate_trajectory(estimated, truth)


def run_vo_trajectory(num_frames: int = 120, seed: int = 1, quiet: bool = False) -> dict:
    summary = {}
    for dataset in DATASETS:
        errors = _run(dataset, num_frames, seed)
        summary[dataset] = {
            "poses": errors.num_poses,
            "ate_rmse": errors.ate_rmse,
            "rpe_translation": errors.rpe_translation_median,
            "rpe_rotation_deg": errors.rpe_rotation_deg_median,
        }
    if not quiet:
        table = Table(
            "VO substrate — trajectory quality (Sim(3)-aligned, meters)",
            ["dataset", "poses", "ATE rmse", "RPE trans", "RPE rot deg"],
        )
        for dataset, row in summary.items():
            table.add_row(
                dataset,
                row["poses"],
                row["ate_rmse"],
                row["rpe_translation"],
                row["rpe_rotation_deg"],
            )
        table.print()
    return summary


def bench_vo_trajectory(benchmark):
    summary = benchmark.pedantic(
        run_vo_trajectory, kwargs={"num_frames": 90, "quiet": True}, rounds=1, iterations=1
    )
    for dataset, row in summary.items():
        assert row["poses"] > 40
        assert row["ate_rmse"] < 0.25  # centimeter-to-decimeter scale
        assert row["rpe_rotation_deg"] < 0.5


if __name__ == "__main__":
    run_vo_trajectory()
