"""Section VI-F2 — power consumption.

Paper numbers: running edgeIS for 10 minutes consumes 4.2% of an iPhone
11 battery and 5.4% of a Galaxy S10's — comparable to running an
ARKit/ARCore demo continuously.
"""

from __future__ import annotations

from repro.eval import ExperimentSpec, Table, run_experiment

DEVICES = ("iphone_11", "galaxy_s10")


def run_power(num_frames: int = 300, seed: int = 0, quiet: bool = False) -> dict:
    summary: dict[str, float] = {}
    for device in DEVICES:
        spec = ExperimentSpec(
            system="edgeis",
            dataset="ar_indoor",
            network="wifi_5ghz",
            num_frames=num_frames,
            seed=seed,
            monitor_resources=True,
            power_device=device,
        )
        outcome = run_experiment(spec)
        summary[device] = outcome.resources.extrapolate_battery_percent(minutes=10)

    if not quiet:
        paper = {"iphone_11": 4.2, "galaxy_s10": 5.4}
        table = Table(
            "Power — battery % consumed by 10 minutes of edgeIS",
            ["device", "measured %", "paper %"],
        )
        for device in DEVICES:
            table.add_row(device, summary[device], paper[device])
        table.print()
    return summary


def bench_power_consumption(benchmark):
    summary = benchmark.pedantic(
        run_power, kwargs={"num_frames": 150, "quiet": True}, rounds=1, iterations=1
    )
    # Single-digit percent per 10 minutes, Galaxy slightly hungrier.
    assert 1.0 < summary["iphone_11"] < 12.0
    assert summary["galaxy_s10"] > summary["iphone_11"]


if __name__ == "__main__":
    run_power()
