"""Fig. 10 — false segmentation rate under different network conditions
(WiFi 2.4 GHz vs WiFi 5 GHz).

Paper numbers: edgeIS 6.1% (2.4 GHz) and 4.1% (5 GHz); EAAR 21% and
EdgeDuet 41% even at 5 GHz (worse at 2.4 GHz); edgeIS reduces the false
rate by >= 78% vs EAAR and >= 83% vs EdgeDuet under either network.
"""

from __future__ import annotations

import numpy as np

from repro.eval import ExperimentSpec, Table, run_experiment

SYSTEMS = ("edgeis", "eaar", "edgeduet")
NETWORKS = ("wifi_2.4ghz", "wifi_5ghz")
DATASETS = ("davis_like", "xiph_like")


def run_fig10(
    num_frames: int = 150,
    datasets: tuple[str, ...] = DATASETS,
    seed: int = 0,
    quiet: bool = False,
) -> dict:
    summary: dict[str, dict[str, float]] = {}
    for system in SYSTEMS:
        summary[system] = {}
        for network in NETWORKS:
            ious = []
            for dataset in datasets:
                spec = ExperimentSpec(
                    system=system,
                    dataset=dataset,
                    network=network,
                    num_frames=num_frames,
                    seed=seed,
                )
                ious.append(run_experiment(spec).result.per_object_ious())
            all_ious = np.concatenate(ious)
            summary[system][network] = float((all_ious < 0.75).mean())

    if not quiet:
        table = Table(
            "Fig. 10 — false rate (IoU < 0.75) by network",
            ["system", "WiFi 2.4 GHz", "WiFi 5 GHz", "paper 2.4", "paper 5"],
        )
        paper = {
            "edgeis": (0.061, 0.041),
            "eaar": (">0.21", 0.21),
            "edgeduet": (">0.41", 0.41),
        }
        for system in SYSTEMS:
            table.add_row(
                system,
                summary[system]["wifi_2.4ghz"],
                summary[system]["wifi_5ghz"],
                paper[system][0],
                paper[system][1],
            )
        table.print()

        for network in NETWORKS:
            vs_eaar = 1 - summary["edgeis"][network] / max(
                summary["eaar"][network], 1e-9
            )
            vs_duet = 1 - summary["edgeis"][network] / max(
                summary["edgeduet"][network], 1e-9
            )
            print(
                f"{network}: edgeIS reduces false rate by {vs_eaar:.0%} vs EAAR, "
                f"{vs_duet:.0%} vs EdgeDuet (paper: >=78% / >=83%)"
            )
        print()
    return summary


def bench_fig10_networks(benchmark):
    summary = benchmark.pedantic(
        run_fig10,
        kwargs={"num_frames": 120, "datasets": ("xiph_like",), "quiet": True},
        rounds=1,
        iterations=1,
    )
    for network in NETWORKS:
        assert summary["edgeis"][network] < summary["eaar"][network]
        assert summary["edgeis"][network] < summary["edgeduet"][network]
    # edgeIS stays robust when the network degrades.
    assert summary["edgeis"]["wifi_2.4ghz"] < 0.25


if __name__ == "__main__":
    run_fig10()
