"""Fig. 12 — robustness to camera motion: the same route walked, strided
and jogged.

Paper numbers: false rate 4.7% / 9.8% / 29.9% for slow / medium / fast;
even in the worst case edgeIS keeps a mean IoU of 0.82.
"""

from __future__ import annotations

import numpy as np

from repro.eval import ExperimentSpec, Table, run_experiment

GRADES = ("walk", "stride", "jog")


def run_fig12(num_frames: int = 150, seed: int = 0, quiet: bool = False) -> dict:
    summary: dict[str, dict[str, float]] = {}
    for grade in GRADES:
        ious = []
        for dataset in ("xiph_like", "ar_indoor"):
            spec = ExperimentSpec(
                system="edgeis",
                dataset=dataset,
                motion_grade=grade,
                network="wifi_5ghz",
                num_frames=num_frames,
                seed=seed,
            )
            ious.append(run_experiment(spec).result.per_object_ious())
        all_ious = np.concatenate(ious)
        summary[grade] = {
            "mean_iou": float(all_ious.mean()) if len(all_ious) else 0.0,
            "false_rate_75": float((all_ious < 0.75).mean()) if len(all_ious) else 1.0,
        }

    if not quiet:
        paper = {"walk": 0.047, "stride": 0.098, "jog": 0.299}
        table = Table(
            "Fig. 12 — robustness to camera motion (edgeIS)",
            ["motion", "mean IoU", "false@0.75", "paper false@0.75"],
        )
        for grade in GRADES:
            table.add_row(
                grade,
                summary[grade]["mean_iou"],
                summary[grade]["false_rate_75"],
                paper[grade],
            )
        table.print()
    return summary


def bench_fig12_motion(benchmark):
    summary = benchmark.pedantic(
        run_fig12, kwargs={"num_frames": 120, "quiet": True}, rounds=1, iterations=1
    )
    # Faster motion hurts, but the system survives (paper worst case 0.82).
    assert summary["walk"]["false_rate_75"] <= summary["jog"]["false_rate_75"]
    assert summary["walk"]["mean_iou"] >= summary["jog"]["mean_iou"] - 0.02
    assert summary["jog"]["mean_iou"] > 0.6


if __name__ == "__main__":
    run_fig12()
