"""Fig. 17 — the oil-field case study.

Eight devices (five WiFi head-mounted displays, three LTE phones) run the
AR inspection application against a Jetson AGX Xavier edge node.  Paper
numbers: average segmentation accuracy 87%, rendered-information accuracy
92%, false segmentation rate 8%, false rendering rate 2%.
"""

from __future__ import annotations

from repro.eval import Table
from repro.eval.field_study import run_field_study


def run_fig17(num_frames: int = 180, seed: int = 0, quiet: bool = False) -> dict:
    study = run_field_study(num_frames=num_frames, seed=seed)
    summary = {
        "segmentation_accuracy": study.mean_iou,
        "false_segmentation_rate": study.mean_false_rate,
        "rendered_accuracy": study.rendered_accuracy,
        "rendered_false_rate": study.rendered_false_rate,
        "per_device_iou": study.per_device_iou,
    }

    if not quiet:
        table = Table(
            "Fig. 17 — oil-field deployment (8 devices, Xavier edge)",
            ["metric", "measured", "paper"],
        )
        table.add_row("segmentation accuracy", study.mean_iou, 0.87)
        table.add_row("false segmentation rate", study.mean_false_rate, 0.08)
        table.add_row("rendered-info accuracy", study.rendered_accuracy, 0.92)
        table.add_row("false rendering rate", study.rendered_false_rate, 0.02)
        table.print()

        devices = Table(
            "per-device segmentation accuracy",
            ["device", "link", "mean IoU", "false@0.75"],
        )
        for device_id in sorted(study.per_device_iou):
            link = "wifi" if device_id < 5 else "lte"
            devices.add_row(
                device_id,
                link,
                study.per_device_iou[device_id],
                study.per_device_false_rate[device_id],
            )
        devices.print()
    return summary


def bench_fig17_field_study(benchmark):
    summary = benchmark.pedantic(
        run_fig17, kwargs={"num_frames": 120, "quiet": True}, rounds=1, iterations=1
    )
    # Field accuracy is high but below the lab numbers (paper: 0.87 vs
    # 0.92), and users judge the rendered overlays even more favourably.
    assert 0.7 < summary["segmentation_accuracy"] < 0.99
    assert summary["rendered_accuracy"] >= summary["segmentation_accuracy"] - 0.1
    assert summary["rendered_false_rate"] <= summary["false_segmentation_rate"] + 0.05


if __name__ == "__main__":
    run_fig17()
