"""Fig. 9 — overall instance-segmentation accuracy: IoU CDF and false
rate of the five systems over the dataset suite at WiFi 5 GHz.

Paper numbers (false rate at the strict 0.75 threshold): mobile-only
78.3%, best-effort 60.1%, EdgeDuet 39%, EAAR 21%, edgeIS 3.9%; edgeIS
mean IoU 0.92, a 10-20% improvement over EAAR/EdgeDuet.
"""

from __future__ import annotations

import numpy as np

from repro.eval import SYSTEM_NAMES, ExperimentSpec, Table, format_cdf, run_experiment

DATASETS = ("davis_like", "kitti_like", "xiph_like", "ar_indoor")


def run_fig9(
    num_frames: int = 150,
    datasets: tuple[str, ...] = DATASETS,
    systems: tuple[str, ...] = SYSTEM_NAMES,
    seed: int = 0,
    quiet: bool = False,
) -> dict:
    per_system_ious: dict[str, list[np.ndarray]] = {s: [] for s in systems}
    for system in systems:
        for dataset in datasets:
            spec = ExperimentSpec(
                system=system,
                dataset=dataset,
                network="wifi_5ghz",
                num_frames=num_frames,
                seed=seed,
            )
            result = run_experiment(spec).result
            per_system_ious[system].append(result.per_object_ious())

    summary: dict[str, dict] = {}
    for system, arrays in per_system_ious.items():
        ious = np.concatenate(arrays) if arrays else np.zeros(0)
        summary[system] = {
            "mean_iou": float(ious.mean()) if len(ious) else 0.0,
            "false_rate_75": float((ious < 0.75).mean()) if len(ious) else 1.0,
            "false_rate_50": float((ious < 0.5).mean()) if len(ious) else 1.0,
            "cdf": format_cdf(ious),
        }

    if not quiet:
        paper = {
            "edgeis": 0.039,
            "eaar": 0.21,
            "edgeduet": 0.39,
            "edge_best_effort": 0.601,
            "mobile_only": 0.783,
        }
        table = Table(
            "Fig. 9 — overall accuracy (all datasets, WiFi 5 GHz)",
            ["system", "mean IoU", "false@0.75", "false@0.5", "paper false@0.75"],
        )
        for system in systems:
            row = summary[system]
            table.add_row(
                system,
                row["mean_iou"],
                row["false_rate_75"],
                row["false_rate_50"],
                paper.get(system, float("nan")),
            )
        table.print()

        cdf_table = Table(
            "Fig. 9 — accuracy CDF, P[IoU <= x]",
            ["system"] + [f"x={p}" for p in (0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 0.95)],
        )
        for system in systems:
            cdf = summary[system]["cdf"]
            cdf_table.add_row(system, *[cdf[p] for p in (0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 0.95)])
        cdf_table.print()
    return summary


def bench_fig9_overall(benchmark):
    summary = benchmark.pedantic(
        run_fig9,
        kwargs={
            "num_frames": 120,
            "datasets": ("davis_like", "xiph_like"),
            "quiet": True,
        },
        rounds=1,
        iterations=1,
    )
    # Shape assertions: the paper's ordering must hold.
    assert summary["edgeis"]["false_rate_75"] < summary["eaar"]["false_rate_75"]
    assert summary["eaar"]["false_rate_75"] < summary["mobile_only"]["false_rate_75"]
    assert (
        summary["edge_best_effort"]["false_rate_75"]
        < summary["mobile_only"]["false_rate_75"]
    )
    assert summary["edgeis"]["mean_iou"] > summary["eaar"]["mean_iou"]
    assert summary["edgeis"]["mean_iou"] > summary["edgeduet"]["mean_iou"]
    assert summary["edgeis"]["mean_iou"] > 0.85


if __name__ == "__main__":
    run_fig9()
