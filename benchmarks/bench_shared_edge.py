"""Extension study — edge-server contention as the fleet grows.

The paper's field deployment shares one Jetson AGX Xavier among eight
devices (Section VI-G) but reports only aggregate accuracy.  This bench
quantifies what sharing costs: the same edgeIS client run in fleets of
1/2/4/8 against a single Xavier.  CIIA is what makes sharing viable at
all — its ~2x inference cut roughly doubles the fleet a server sustains.
"""

from __future__ import annotations

import numpy as np

from repro.eval import ExperimentSpec, Table
from repro.eval.experiments import _make_video, build_client
from repro.model import SimulatedSegmentationModel
from repro.network import make_channel
from repro.runtime import ClientSession, EdgeServer, MultiClientPipeline

FLEET_SIZES = (1, 2, 4, 8)


def _run_fleet(size: int, num_frames: int, seed: int, use_ciia: bool = True):
    from repro.core import SystemConfig
    from repro.core.system import EdgeISSystem

    sessions = []
    for device in range(size):
        spec = ExperimentSpec(
            system="edgeis",
            dataset="oilfield",
            num_frames=num_frames,
            seed=seed + device,
        )
        video = _make_video(spec)
        config = SystemConfig(seed=seed + device, use_ciia=use_ciia, use_mamt=True, use_cfrs=True)
        client = EdgeISSystem(
            video.camera,
            (video.camera.height, video.camera.width),
            config=config,
            world=video.world,
        )
        channel = make_channel("wifi_5ghz", np.random.default_rng(seed + 500 + device))
        sessions.append(ClientSession(video=video, client=client, channel=channel))
    server = EdgeServer(
        SimulatedSegmentationModel(
            "mask_rcnn_r101", "jetson_xavier", np.random.default_rng(seed + 999)
        )
    )
    results = MultiClientPipeline(sessions, server).run()
    ious = np.concatenate([r.per_object_ious() for r in results])
    return {
        "mean_iou": float(ious.mean()) if len(ious) else 0.0,
        "false_rate_75": float((ious < 0.75).mean()) if len(ious) else 1.0,
        "server_util": results[0].server_utilization(),
    }


def run_shared_edge(num_frames: int = 120, seed: int = 0, quiet: bool = False) -> dict:
    summary = {size: _run_fleet(size, num_frames, seed) for size in FLEET_SIZES}
    # The ablation row: fleet of 8 without CIIA shows why acceleration
    # is what makes the shared deployment feasible.
    summary["8_no_ciia"] = _run_fleet(8, num_frames, seed, use_ciia=False)

    if not quiet:
        table = Table(
            "Shared edge node — fleet size vs accuracy (oilfield, Xavier)",
            ["fleet", "mean IoU", "false@0.75", "server util"],
        )
        for size in FLEET_SIZES:
            row = summary[size]
            table.add_row(size, row["mean_iou"], row["false_rate_75"], row["server_util"])
        row = summary["8_no_ciia"]
        table.add_row("8 (no CIIA)", row["mean_iou"], row["false_rate_75"], row["server_util"])
        table.print()
    return summary


def bench_shared_edge(benchmark):
    summary = benchmark.pedantic(
        run_shared_edge, kwargs={"num_frames": 70, "quiet": True}, rounds=1, iterations=1
    )
    # Contention grows with fleet size; accuracy degrades gracefully.
    assert summary[1]["server_util"] <= summary[8]["server_util"] + 0.05
    assert summary[1]["mean_iou"] >= summary[8]["mean_iou"] - 0.05
    # CIIA keeps the 8-device fleet usable.
    assert summary[8]["mean_iou"] >= summary["8_no_ciia"]["mean_iou"] - 0.03


if __name__ == "__main__":
    run_shared_edge()
